open Compo_core
open Helpers
module G = Compo_scenarios.Gates

let test_create_and_get () =
  let db = gates_db () in
  let g = ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2) in
  check_value "Length" (Value.Int 4) (ok (Database.get_attr db g "Length"));
  check_value "Function" (Value.Enum_case "AND")
    (ok (Database.get_attr db g "Function"));
  check_string "type" "SimpleGate" (ok (Database.type_of db g))

let test_unset_attr_is_null () =
  let db = gates_db () in
  let g = ok (Database.new_object db ~ty:"SimpleGate" ()) in
  check_value "uninitialised attr" Value.Null (ok (Database.get_attr db g "Length"))

let test_attr_domain_enforced () =
  let db = gates_db () in
  let g = ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2) in
  expect_error ~msg:"string into integer attr" any_error
    (Database.set_attr db g "Length" (Value.Str "long"));
  expect_error ~msg:"unknown attr" any_error
    (Database.set_attr db g "Bogus" (Value.Int 1));
  expect_error ~msg:"bad enum case" any_error
    (Database.set_attr db g "Function" (Value.Enum_case "XOR"))

let test_class_membership () =
  let db = gates_db () in
  let store = Database.store db in
  let g = ok (G.flip_flop db) in
  check_bool "member of Gates" true
    (List.exists (Surrogate.equal g) (ok (Store.class_members store "Gates")));
  (* class member type is enforced *)
  let pin_iface = ok (G.new_pin_interface db ~pins:[ G.In ]) in
  expect_error ~msg:"wrong member type" any_error
    (Store.insert_into_class store ~cls:"Gates" pin_iface);
  ok (Store.remove_from_class store ~cls:"Gates" g);
  check_bool "removed" false
    (List.exists (Surrogate.equal g) (ok (Store.class_members store "Gates")))

let test_subobjects () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  let pins = ok (Database.subclass_members db ff "Pins") in
  check_int "flip-flop has 4 external pins" 4 (List.length pins);
  let subgates = ok (Database.subclass_members db ff "SubGates") in
  check_int "two NOR subgates" 2 (List.length subgates);
  let wires = ok (Database.subrel_members db ff "Wires") in
  check_int "six wires" 6 (List.length wires);
  (* subobjects know their owner *)
  List.iter
    (fun p ->
      match ok (Store.owner_of (Database.store db) p) with
      | Some o -> Alcotest.check surrogate "pin owner" ff o
      | None -> Alcotest.fail "pin has no owner")
    pins

let test_unknown_subclass_rejected () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  expect_error any_error (Database.subclass_members db ff "Nonsense");
  expect_error any_error
    (Database.new_subobject db ~parent:ff ~subclass:"Nonsense" ())

let test_cascade_delete () =
  (* C9: subobjects are deleted with the complex object *)
  let db = gates_db () in
  let store = Database.store db in
  let ff = ok (G.flip_flop db) in
  let pins = ok (Database.subclass_members db ff "Pins") in
  let subgates = ok (Database.subclass_members db ff "SubGates") in
  let wires = ok (Database.subrel_members db ff "Wires") in
  ok (Database.delete db ff);
  check_bool "gate gone" false (Store.mem store ff);
  List.iter
    (fun s -> check_bool "dependent gone" false (Store.mem store s))
    (pins @ subgates @ wires);
  check_int "class emptied" 0 (List.length (ok (Store.class_members store "Gates")))

let test_delete_restricted_by_relationship () =
  let db = gates_db () in
  let store = Database.store db in
  let ff = ok (G.flip_flop db) in
  let sub = List.hd (ok (Database.subclass_members db ff "SubGates")) in
  let sub_pin = ok (G.pin db sub 0) in
  (* deleting a pin used by a wire of the complex object is restricted *)
  expect_error
    ~msg:"participant delete restricted"
    (function Errors.Delete_restricted _ -> true | _ -> false)
    (Database.delete db sub_pin);
  (* force delete removes the wires that referenced it *)
  let wires_before = List.length (ok (Database.subrel_members db ff "Wires")) in
  ok (Database.delete db ~force:true sub_pin);
  let wires_after = List.length (ok (Database.subrel_members db ff "Wires")) in
  check_bool "some wires removed" true (wires_after < wires_before);
  check_bool "store consistent" true (Store.mem store ff)

let test_relationship_participants () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  let wire = List.hd (ok (Database.subrel_members db ff "Wires")) in
  (match ok (Database.participant db wire "Pin1") with
  | Value.Ref _ -> ()
  | v -> Alcotest.failf "Pin1 should be a reference, got %s" (Value.to_string v));
  expect_error any_error (Database.participant db wire "Pin9")

let test_participant_type_enforced () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  let pin = List.hd (ok (Database.subclass_members db ff "Pins")) in
  (* Pin2 given a gate instead of a pin *)
  expect_error any_error
    (Database.new_subrel db ~parent:ff ~subrel:"Wires"
       ~participants:[ ("Pin1", Value.Ref pin); ("Pin2", Value.Ref ff) ]
       ());
  expect_error ~msg:"missing participant" any_error
    (Database.new_subrel db ~parent:ff ~subrel:"Wires"
       ~participants:[ ("Pin1", Value.Ref pin) ]
       ())

let test_is_instance_of_follows_chain () =
  let db = gates_db () in
  let store = Database.store db in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  check_bool "impl is GateImplementation" true
    (Store.is_instance_of store impl "GateImplementation");
  check_bool "impl is-a GateInterface (via chain)" true
    (Store.is_instance_of store impl "GateInterface");
  check_bool "impl is not a PinType" false (Store.is_instance_of store impl "PinType")

let test_write_hook_fires () =
  let db = gates_db () in
  let store = Database.store db in
  let hits = ref [] in
  let hook = Store.add_write_hook store (fun s -> hits := s :: !hits) in
  let g = ok (G.new_simple_gate db ~func:"OR" ~length:4 ~width:2) in
  ok (Database.set_attr db g "Length" (Value.Int 5));
  Store.remove_hook store hook;
  check_bool "write hook saw the object" true (List.exists (Surrogate.equal g) !hits)



(* Section 3: "several classes may have objects of the same type" -- and
   one object may appear in several classes. *)
let test_object_in_several_classes () =
  let db = gates_db () in
  let store = Database.store db in
  ok (Store.create_class store ~name:"Favourites" ~member_type:"GateInterface");
  let iface = ok (G.nor_interface db) in
  ok (Store.insert_into_class store ~cls:"Favourites" iface);
  check_bool "in Interfaces" true
    (List.exists (Surrogate.equal iface) (ok (Store.class_members store "Interfaces")));
  check_bool "in Favourites" true
    (List.exists (Surrogate.equal iface) (ok (Store.class_members store "Favourites")));
  (* idempotent insertion *)
  ok (Store.insert_into_class store ~cls:"Favourites" iface);
  check_int "no duplicate membership" 1
    (List.length (ok (Store.class_members store "Favourites")));
  (* deletion leaves both classes clean *)
  ok (Database.delete db ~force:true iface);
  check_int "removed from Favourites" 0
    (List.length (ok (Store.class_members store "Favourites")));
  Alcotest.(check (list string)) "healthy" [] (Store.check_invariants store)

let suite =
  ( "store",
    [
      case "create and read attributes" test_create_and_get;
      case "uninitialised attribute reads Null" test_unset_attr_is_null;
      case "attribute domains enforced" test_attr_domain_enforced;
      case "class membership and typing" test_class_membership;
      case "subobjects and subrels of a complex object" test_subobjects;
      case "unknown subclass rejected" test_unknown_subclass_rejected;
      case "cascade delete (C9)" test_cascade_delete;
      case "delete restricted by incoming relationships" test_delete_restricted_by_relationship;
      case "relationship participants" test_relationship_participants;
      case "participant typing enforced" test_participant_type_enforced;
      case "is-instance-of follows transmitter chain" test_is_instance_of_follows_chain;
      case "write hook fires" test_write_hook_fires;
      case "objects in several classes (section 3)" test_object_in_several_classes;
    ] )
