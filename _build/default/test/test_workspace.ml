open Compo_core
open Compo_txn
open Compo_workspace
open Helpers
module G = Compo_scenarios.Gates
module T = Transaction

let setup () =
  let db = gates_db () in
  let ac = Access_control.create () in
  let mg = T.create_manager ~access:ac (Database.store db) in
  let ws = Workspace.create_manager mg in
  (db, ac, mg, ws)

let checked_out_latch db ws =
  let iface = ok (G.nor_interface db) in
  let top_iface = ok (G.nor_interface db) in
  let latch = ok (G.new_implementation db ~interface:top_iface ()) in
  let use = ok (G.use_component db ~composite:latch ~component_interface:iface ~x:0 ~y:0) in
  let w = ok (Workspace.checkout ws ~user:"alice" latch) in
  (iface, latch, use, w)

let test_checkout_copies_and_locks () =
  let db, _, mg, ws = setup () in
  let _iface, latch, use, w = checked_out_latch db ws in
  check_bool "workspace open" true (Workspace.state w = Workspace.Open);
  (* the private copy mirrors the public tree *)
  let priv = Workspace.private_root w in
  check_bool "separate root" false (Surrogate.equal priv latch);
  check_int "component use copied" 1
    (List.length (ok (Database.subclass_members db priv "SubGates")));
  (* mapping works *)
  (match Workspace.private_of w use with
  | Some p -> check_bool "mapped use differs" false (Surrogate.equal p use)
  | None -> Alcotest.fail "use not in mapping");
  (* the private copy is not in any public class *)
  check_bool "copy outside public classes" false
    (List.exists (Surrogate.equal priv) (ok (Database.select db ~cls:"Implementations" ())));
  (* public side is locked: another transaction cannot write the latch *)
  let t2 = T.begin_txn mg ~user:"bob" in
  expect_error
    (function Errors.Lock_error _ -> true | _ -> false)
    (T.set_attr mg t2 latch "TimeBehavior" (Value.Int 5));
  ok (T.commit mg t2);
  let _ = ok (Workspace.discard ws w) in
  ()

let test_edit_and_checkin () =
  let db, _, _, ws = setup () in
  let _iface, latch, use, w = checked_out_latch db ws in
  let priv = Workspace.private_root w in
  let priv_use = Option.get (Workspace.private_of w use) in
  (* edit the private copy freely *)
  ok (Database.set_attr db priv "TimeBehavior" (Value.Int 42));
  ok (Database.set_attr db priv_use "GateLocation" (Value.point 9 9));
  (* diff reports both pending changes against the public originals *)
  let pending = ok (Workspace.diff ws w) in
  check_int "two pending changes" 2 (List.length pending);
  let applied = ok (Workspace.checkin ws w) in
  check_int "two changes applied" 2 (List.length applied);
  check_bool "workspace closed" true (Workspace.state w = Workspace.Checked_in);
  check_value "public latch updated" (Value.Int 42)
    (ok (Database.get_attr db latch "TimeBehavior"));
  check_value "public use updated" (Value.point 9 9)
    (ok (Database.get_attr db use "GateLocation"));
  (* private copy is gone, locks released, store healthy *)
  check_bool "private copy deleted" false (Store.mem (Database.store db) priv);
  Alcotest.(check (list string)) "store healthy" []
    (Store.check_invariants (Database.store db))

let test_checkin_releases_locks () =
  let db, _, mg, ws = setup () in
  let _iface, latch, _use, w = checked_out_latch db ws in
  let priv = Workspace.private_root w in
  ok (Database.set_attr db priv "TimeBehavior" (Value.Int 1));
  let _ = ok (Workspace.checkin ws w) in
  (* now others can write *)
  let t2 = T.begin_txn mg ~user:"bob" in
  ok (T.set_attr mg t2 latch "TimeBehavior" (Value.Int 2));
  ok (T.commit mg t2)

let test_structural_change_rejected () =
  let db, _, _, ws = setup () in
  let iface, _latch, _use, w = checked_out_latch db ws in
  let priv = Workspace.private_root w in
  (* adding a component in the workspace is rejected at check-in *)
  let _ = ok (G.use_component db ~composite:priv ~component_interface:iface ~x:5 ~y:5) in
  expect_error
    (function Errors.Schema_error _ -> true | _ -> false)
    (Workspace.checkin ws w);
  check_bool "workspace stays open" true (Workspace.state w = Workspace.Open);
  let _ = ok (Workspace.discard ws w) in
  ()

let test_protected_part_stays_readonly () =
  let db, ac, _, ws = setup () in
  let iface = ok (G.nor_interface db) in
  Access_control.protect ac iface;
  let top_iface = ok (G.nor_interface db) in
  let latch = ok (G.new_implementation db ~interface:top_iface ()) in
  let use = ok (G.use_component db ~composite:latch ~component_interface:iface ~x:0 ~y:0) in
  (* protect the placed use as well: a frozen placement *)
  Access_control.protect ac use;
  let w = ok (Workspace.checkout ws ~user:"carol" latch) in
  (* both protected objects were taken in S, the rest in X *)
  check_bool "protected interface read-locked" true
    (List.assoc_opt iface (Workspace.locked w) = Some Lock.S);
  check_bool "protected use read-locked" true
    (List.assoc_opt use (Workspace.locked w) = Some Lock.S);
  (* the catalog part is shared by reference: it has no private copy, and
     its data is only reachable read-only through inheritance *)
  check_bool "catalog part not copied" true (Workspace.private_of w iface = None);
  let priv_use = Option.get (Workspace.private_of w use) in
  check_value "workspace still reads catalog data" (Value.Int 4)
    (ok (Database.get_attr db priv_use "Length"));
  expect_error
    (function Errors.Inherited_readonly _ -> true | _ -> false)
    (Database.set_attr db priv_use "Length" (Value.Int 99));
  (* local edits to the protected use are possible privately but refused
     at check-in *)
  ok (Database.set_attr db priv_use "GateLocation" (Value.point 8 8));
  expect_error
    (function Errors.Access_denied _ -> true | _ -> false)
    (Workspace.checkin ws w);
  check_bool "workspace stays open after the refusal" true
    (Workspace.state w = Workspace.Open);
  let _ = ok (Workspace.discard ws w) in
  check_value "public placement untouched" (Value.point 0 0)
    (ok (Database.get_attr db use "GateLocation"))

let test_discard_leaves_public_untouched () =
  let db, _, mg, ws = setup () in
  let _iface, latch, _use, w = checked_out_latch db ws in
  let priv = Workspace.private_root w in
  ok (Database.set_attr db priv "TimeBehavior" (Value.Int 77));
  let _ = ok (Workspace.discard ws w) in
  check_value "public unchanged" (Value.Int 1) (ok (Database.get_attr db latch "TimeBehavior"));
  check_bool "copy gone" false (Store.mem (Database.store db) priv);
  (* locks released *)
  let t2 = T.begin_txn mg ~user:"bob" in
  ok (T.set_attr mg t2 latch "TimeBehavior" (Value.Int 1));
  ok (T.commit mg t2);
  (* a closed workspace rejects further operations *)
  expect_error any_error (Workspace.checkin ws w);
  Alcotest.(check (list string)) "store healthy" []
    (Store.check_invariants (Database.store db))

let test_concurrent_checkouts_conflict () =
  let db, _, _, ws = setup () in
  let _iface, latch, _use, w1 = checked_out_latch db ws in
  (* a second checkout of the same composite blocks on the locks *)
  expect_error
    (function Errors.Lock_error _ -> true | _ -> false)
    (Workspace.checkout ws ~user:"bob" latch);
  let _ = ok (Workspace.discard ws w1) in
  (* after the first is discarded, the second succeeds *)
  let w2 = ok (Workspace.checkout ws ~user:"bob" latch) in
  let _ = ok (Workspace.discard ws w2) in
  ()

let test_checkin_visible_to_inheritors () =
  (* the integration story: checking in a catalog change stamps the
     dependent links of public inheritors *)
  let db, _, _, ws = setup () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  let w = ok (Workspace.checkout ws ~user:"alice" iface) in
  let priv = Workspace.private_root w in
  ok (Database.set_attr db priv "Length" (Value.Int 11));
  let _ = ok (Workspace.checkin ws w) in
  check_value "inheritor sees the checked-in value" (Value.Int 11)
    (ok (Database.get_attr db impl "Length"));
  let link = List.hd (ok (Database.links_of db iface)) in
  check_bool "dependent link stamped by check-in" true (ok (Database.is_stale db link))

let suite =
  ( "workspace",
    [
      case "checkout copies the tree and locks the public side" test_checkout_copies_and_locks;
      case "edit privately, check in atomically" test_edit_and_checkin;
      case "check-in releases the locks" test_checkin_releases_locks;
      case "structural workspace changes rejected" test_structural_change_rejected;
      case "protected parts stay read-only through checkout" test_protected_part_stays_readonly;
      case "discard leaves the public side untouched" test_discard_leaves_public_untouched;
      case "concurrent checkouts conflict" test_concurrent_checkouts_conflict;
      case "check-in stamps dependent inheritors" test_checkin_visible_to_inheritors;
    ] )
