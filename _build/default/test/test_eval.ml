open Compo_core
open Helpers
module G = Compo_scenarios.Gates

let eval_on db self expr =
  Eval.eval (Eval.env ~self (Database.store db)) expr

let eval_bool_on db self expr =
  Eval.eval_bool (Eval.env ~self (Database.store db)) expr

let test_arithmetic () =
  let db = gates_db () in
  let g = ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2) in
  check_value "L + W" (Value.Int 6)
    (ok (eval_on db g Expr.(path [ "Length" ] + path [ "Width" ])));
  check_value "precedence-free tree" (Value.Int 800)
    (ok (eval_on db g Expr.(int 100 * path [ "Length" ] * path [ "Width" ])));
  check_value "division" (Value.Int 2)
    (ok (eval_on db g Expr.(path [ "Length" ] / path [ "Width" ])));
  expect_error any_error (eval_on db g Expr.(path [ "Length" ] / int 0))

let test_comparisons_and_logic () =
  let db = gates_db () in
  let g = ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2) in
  check_bool "lt" true (ok (eval_bool_on db g Expr.(path [ "Width" ] < path [ "Length" ])));
  check_bool "and/or" true
    (ok
       (eval_bool_on db g
          Expr.((path [ "Width" ] = int 2 && path [ "Length" ] = int 4) || int 1 = int 2)));
  check_bool "not" false (ok (eval_bool_on db g Expr.(not_ (path [ "Width" ] = int 2))));
  check_bool "int/real comparison coerces" true
    (ok (eval_bool_on db g Expr.(Const (Value.Real 2.0) = path [ "Width" ])))

let test_path_into_record_attr () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  let sub = List.hd (ok (Database.subclass_members db ff "SubGates")) in
  (* GatePosition.X through a record-valued attribute *)
  check_value "record field path" (Value.Int 3)
    (ok (eval_on db sub (Expr.path [ "GatePosition"; "X" ])))

let test_count_with_filter () =
  let db = gates_db () in
  (* over an attribute-valued set of records (SimpleGate.Pins) *)
  let sg = ok (G.new_simple_gate db ~func:"NOR" ~length:4 ~width:2) in
  check_value "count where IN over value collection" (Value.Int 2)
    (ok
       (eval_on db sg
          Expr.(count ~where:(path [ "Pins"; "InOut" ] = enum "IN") [ "Pins" ])));
  (* over a subclass of entities (ElementaryGate.Pins) *)
  let eg = ok (G.new_elementary_gate db ~func:"NOR" ~x:0 ~y:0 ()) in
  check_value "count where OUT over subobjects" (Value.Int 1)
    (ok
       (eval_on db eg
          Expr.(count ~where:(path [ "Pins"; "InOut" ] = enum "OUT") [ "Pins" ])));
  check_value "unfiltered count" (Value.Int 3) (ok (eval_on db eg Expr.(count [ "Pins" ])))

let test_sum_over_path () =
  let db = steel_db () in
  let iface =
    ok
      (Compo_scenarios.Steel.new_girder_interface db ~length:100 ~height:10
         ~width:10
         ~bores:[ (10, 2, (0, 0)); (10, 3, (5, 0)); (12, 5, (9, 0)) ])
  in
  check_value "sum of bore lengths" (Value.Int 10)
    (ok (eval_on db iface Expr.(sum [ "Bores"; "Length" ])))

let test_membership_in_class_path () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  let own_pin = List.hd (ok (Database.subclass_members db ff "Pins")) in
  let sub = List.hd (ok (Database.subclass_members db ff "SubGates")) in
  let sub_pin = ok (G.pin db sub 0) in
  let env = Eval.env ~self:ff (Database.store db) in
  let member pin path_segs =
    ok
      (Eval.eval_bool
         (Eval.with_var env "p" (Eval.E pin))
         Expr.(in_ (path [ "p" ]) (path path_segs)))
  in
  check_bool "own pin in Pins" true (member own_pin [ "Pins" ]);
  check_bool "own pin not in SubGates.Pins" false (member own_pin [ "SubGates"; "Pins" ]);
  check_bool "subgate pin in SubGates.Pins" true (member sub_pin [ "SubGates"; "Pins" ]);
  check_bool "subgate pin not in Pins" false (member sub_pin [ "Pins" ])

let test_forall_exists () =
  let db = gates_db () in
  let eg = ok (G.new_elementary_gate db ~func:"NOR" ~x:0 ~y:0 ()) in
  check_bool "forall pins have a location" true
    (ok
       (eval_bool_on db eg
          Expr.(forall [ ("p", [ "Pins" ]) ] (not_ (path [ "p"; "PinLocation" ] = Const Value.Null)))));
  check_bool "exists an OUT pin" true
    (ok
       (eval_bool_on db eg
          Expr.(exists [ ("p", [ "Pins" ]) ] (path [ "p"; "InOut" ] = enum "OUT"))));
  check_bool "forall over empty range is true" true
    (ok
       (let impl = ok (Database.new_object db ~ty:"GateImplementation" ()) in
        eval_bool_on db impl
          Expr.(forall [ ("s", [ "SubGates" ]) ] (int 1 = int 2))));
  check_bool "exists over empty range is false" false
    (ok
       (let impl = ok (Database.new_object db ~ty:"GateImplementation" ()) in
        eval_bool_on db impl
          Expr.(exists [ ("s", [ "SubGates" ]) ] (int 1 = int 1))))

let test_paths_through_inheritance () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  (* count pins of the implementation: resolved through the binding *)
  check_value "count inherited Pins" (Value.Int 3)
    (ok (eval_on db impl Expr.(count [ "Pins" ])));
  check_value "inherited Length in arithmetic" (Value.Int 8)
    (ok (eval_on db impl Expr.(path [ "Length" ] + path [ "Length" ])))

let test_class_head_resolution () =
  let db = gates_db () in
  let _ = ok (G.nor_interface db) in
  let _ = ok (G.nor_interface db) in
  (* no self: head resolves against top-level class names *)
  let env = Eval.env (Database.store db) in
  check_value "count over a class" (Value.Int 2)
    (ok (Eval.eval env Expr.(count [ "Interfaces" ])))

let test_scalar_context_errors () =
  let db = gates_db () in
  let eg = ok (G.new_elementary_gate db ~func:"NOR" ~x:0 ~y:0 ()) in
  expect_error ~msg:"multi-valued path in scalar context" any_error
    (eval_on db eg Expr.(path [ "Pins"; "InOut" ] = enum "IN"));
  expect_error ~msg:"unknown head" any_error (eval_on db eg (Expr.path [ "Zorp" ]))

let test_empty_path_is_null () =
  let db = gates_db () in
  let impl = ok (Database.new_object db ~ty:"GateImplementation" ()) in
  (* unbound: Pins resolves to no members; scalar context yields Null *)
  check_value "empty path scalar" Value.Null
    (ok (eval_on db impl (Expr.path [ "SubGates"; "GateLocation" ])))



let test_arithmetic_edge_cases () =
  let db = gates_db () in
  let g = ok (Database.new_object db ~ty:"SimpleGate" ()) in
  (* Length is uninitialised: Null in arithmetic is an error, not 0 *)
  expect_error
    (function Errors.Eval_error _ -> true | _ -> false)
    (eval_on db g Expr.(path [ "Length" ] + int 1));
  (* ... but Null compares (rank order) without failing *)
  check_bool "Null < 1" true (ok (eval_bool_on db g Expr.(path [ "Length" ] < int 1)));
  (* equality with Null *)
  check_bool "Null = Null" true
    (ok (eval_bool_on db g Expr.(path [ "Length" ] = Const Value.Null)))

let test_in_with_inline_collections () =
  let db = gates_db () in
  let g = ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2) in
  (* rhs is an attribute holding a set of records: member test by value *)
  let member =
    Expr.(
      in_
        (Const (Value.record [ ("PinId", Value.Int 1); ("InOut", Value.Enum_case "IN") ]))
        (path [ "Pins" ]))
  in
  check_bool "record in set-valued attribute" true (ok (eval_bool_on db g member));
  let not_member =
    Expr.(
      in_
        (Const (Value.record [ ("PinId", Value.Int 9); ("InOut", Value.Enum_case "IN") ]))
        (path [ "Pins" ]))
  in
  check_bool "absent record" false (ok (eval_bool_on db g not_member))

let test_matrix_attribute_scalar () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  (* a matrix attribute can be read and compared for equality as a value *)
  let m = ok (Database.get_attr db ff "Function") in
  check_bool "matrix equality through eval" true
    (ok (eval_bool_on db ff Expr.(path [ "Function" ] = Const m)))

let suite =
  ( "eval",
    [
      case "arithmetic" test_arithmetic;
      case "comparisons and logic" test_comparisons_and_logic;
      case "record field paths" test_path_into_record_attr;
      case "count with filter (paper syntax)" test_count_with_filter;
      case "sum over a path" test_sum_over_path;
      case "membership in class paths (Wires where-clause)" test_membership_in_class_path;
      case "forall / exists" test_forall_exists;
      case "paths resolve through inheritance" test_paths_through_inheritance;
      case "class names as path heads" test_class_head_resolution;
      case "scalar context errors" test_scalar_context_errors;
      case "empty path yields Null" test_empty_path_is_null;
      case "arithmetic edge cases" test_arithmetic_edge_cases;
      case "membership with inline collections" test_in_with_inline_collections;
      case "matrix attributes as values" test_matrix_attribute_scalar;
    ] )
