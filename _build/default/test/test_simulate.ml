open Compo_core
open Helpers
module G = Compo_scenarios.Gates
module Sim = Compo_scenarios.Simulate

(* A single-subgate netlist: one elementary gate of the given function,
   wired to two external inputs and one external output. *)
let single_gate_netlist db func =
  let gate =
    ok
      (Database.new_object db ~ty:"Gate"
         ~attrs:
           [
             ("Length", Value.Int 8);
             ("Width", Value.Int 4);
             ("Function", Value.Matrix [| [| Value.Bool true |] |]);
           ]
         ())
  in
  let pin io x y =
    ok
      (Database.new_subobject db ~parent:gate ~subclass:"Pins"
         ~attrs:[ ("InOut", G.io_value io); ("PinLocation", Value.point x y) ]
         ())
  in
  let a = pin G.In 0 0 in
  let b = pin G.In 0 2 in
  let z = pin G.Out 8 1 in
  let sub = ok (G.new_elementary_gate db ~parent:(gate, "SubGates") ~func ~x:3 ~y:0 ()) in
  let sub_a = ok (G.pin db sub 0) in
  let sub_b = ok (G.pin db sub 1) in
  let sub_z = ok (G.pin db sub 2) in
  let _ = ok (G.wire db ~parent:gate ~from_pin:a ~to_pin:sub_a) in
  let _ = ok (G.wire db ~parent:gate ~from_pin:b ~to_pin:sub_b) in
  let _ = ok (G.wire db ~parent:gate ~from_pin:sub_z ~to_pin:z) in
  (gate, a, b, z)

let run db gate inputs =
  match ok (Sim.simulate db ~gate ~inputs) with
  | [ (_, v) ] -> v
  | outs -> Alcotest.failf "expected one output, got %d" (List.length outs)

let test_basic_functions () =
  let db = gates_db () in
  List.iter
    (fun (func, expected) ->
      let gate, a, b, _ = single_gate_netlist db func in
      List.iter
        (fun ((va, vb), want) ->
          check_bool
            (Printf.sprintf "%s(%b,%b)" func va vb)
            want
            (run db gate [ (a, va); (b, vb) ]))
        expected)
    [
      ("AND", [ ((false, false), false); ((true, false), false); ((true, true), true) ]);
      ("OR", [ ((false, false), false); ((true, false), true); ((true, true), true) ]);
      ("NOR", [ ((false, false), true); ((true, false), false); ((true, true), false) ]);
      ("NAND", [ ((false, false), true); ((true, true), false) ]);
    ]

let test_truth_table () =
  let db = gates_db () in
  let gate, _, _, _ = single_gate_netlist db "AND" in
  let table = ok (Sim.truth_table db ~gate) in
  check_int "four rows" 4 (List.length table);
  check_int "one true row" 1
    (List.length (List.filter (fun (_, outs) -> outs = [ true ]) table))

(* The Figure 1 flip-flop behaves like an SR latch. *)
let test_flip_flop_set_reset () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  let pins = ok (Database.subclass_members db ff "Pins") in
  let s, r, q, q' =
    match pins with
    | [ s; r; q; q' ] -> (s, r, q, q')
    | _ -> Alcotest.fail "expected 4 external pins"
  in
  let run_ff sv rv =
    let outs = ok (Sim.simulate db ~gate:ff ~inputs:[ (s, sv); (r, rv) ]) in
    (List.assoc q outs, List.assoc q' outs)
  in
  (* set: S=1, R=0 -> Q=1 *)
  let qv, q'v = run_ff true false in
  check_bool "set: Q" true qv;
  check_bool "set: Q'" false q'v;
  (* reset: S=0, R=1 -> Q=0 *)
  let qv, q'v = run_ff false true in
  check_bool "reset: Q" false qv;
  check_bool "reset: Q'" true q'v;
  (* hold (S=R=0) is state-dependent: the combinational fixpoint honestly
     refuses to pick a state *)
  expect_error
    (function Errors.Eval_error _ -> true | _ -> false)
    (Sim.simulate db ~gate:ff ~inputs:[ (s, false); (r, false) ])

let test_missing_input_rejected () =
  let db = gates_db () in
  let gate, a, _, _ = single_gate_netlist db "AND" in
  expect_error
    (function Errors.Eval_error _ -> true | _ -> false)
    (Sim.simulate db ~gate ~inputs:[ (a, true) ])

let test_malformed_netlist_rejected () =
  let db = gates_db () in
  let gate, a, b, _ = single_gate_netlist db "AND" in
  (* wiring two external inputs together connects two drivers *)
  let _ = ok (G.wire db ~parent:gate ~from_pin:a ~to_pin:b) in
  expect_error
    (function Errors.Schema_error _ -> true | _ -> false)
    (Sim.simulate db ~gate ~inputs:[ (a, true); (b, false) ])

let test_propagation_delay () =
  let db = gates_db () in
  (* leaf: delay 2; mid uses leaf: 3 + 2 = 5; top uses mid twice and leaf
     once: 1 + max(5, 2) = 6 *)
  let leaf_iface = ok (G.nor_interface db) in
  let _leaf_impl = ok (G.new_implementation db ~interface:leaf_iface ~time_behavior:2 ()) in
  let mid_iface = ok (G.nor_interface db) in
  let mid = ok (G.new_implementation db ~interface:mid_iface ~time_behavior:3 ()) in
  let _ = ok (G.use_component db ~composite:mid ~component_interface:leaf_iface ~x:0 ~y:0) in
  let top_iface = ok (G.nor_interface db) in
  let top = ok (G.new_implementation db ~interface:top_iface ~time_behavior:1 ()) in
  let _ = ok (G.use_component db ~composite:top ~component_interface:mid_iface ~x:0 ~y:0) in
  let _ = ok (G.use_component db ~composite:top ~component_interface:mid_iface ~x:1 ~y:0) in
  let _ = ok (G.use_component db ~composite:top ~component_interface:leaf_iface ~x:2 ~y:0) in
  check_int "critical path" 6 (ok (Sim.propagation_delay db top));
  (* a custom chooser models version selection: pick the slowest available
     implementation of every component (worst-case timing) *)
  let slow_leaf = ok (G.new_implementation db ~interface:leaf_iface ~time_behavior:9 ()) in
  check_bool "slow leaf exists" true (Store.mem (Database.store db) slow_leaf);
  let choose iface =
    let impls = ok (Database.implementations_of db iface) in
    let slowest =
      List.fold_left
        (fun acc impl ->
          let d =
            match ok (Database.get_attr db impl "TimeBehavior") with
            | Value.Int i -> i
            | _ -> 0
          in
          match acc with
          | Some (_, best) when best >= d -> acc
          | _ -> Some (impl, d))
        None impls
    in
    Ok (Option.map fst slowest)
  in
  (* worst case: top 1 + mid (3 + slow leaf 9) = 13 *)
  check_int "chooser changes the answer" 13 (ok (Sim.propagation_delay db ~choose top))

let test_delay_of_leaf () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ~time_behavior:7 ()) in
  check_int "leaf delay is its own TimeBehavior" 7 (ok (Sim.propagation_delay db impl))

let suite =
  ( "simulate",
    [
      case "elementary gate functions" test_basic_functions;
      case "truth table" test_truth_table;
      case "flip-flop set/reset (Figure 1 behaves!)" test_flip_flop_set_reset;
      case "missing input rejected" test_missing_input_rejected;
      case "malformed netlist rejected" test_malformed_netlist_rejected;
      case "propagation delay over components" test_propagation_delay;
      case "leaf delay" test_delay_of_leaf;
    ] )
