open Compo_core
open Helpers

(* A simple catalog schema for index tests. *)
let catalog_db () =
  let db = Database.create () in
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "Part";
         ot_inheritor_in = None;
         ot_attrs =
           [
             { Schema.attr_name = "Kind"; attr_domain = Domain.String };
             { Schema.attr_name = "Weight"; attr_domain = Domain.Integer };
           ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  ok (Database.create_class db ~name:"Parts" ~member_type:"Part");
  db

let new_part db kind weight =
  ok
    (Database.new_object db ~cls:"Parts" ~ty:"Part"
       ~attrs:[ ("Kind", Value.Str kind); ("Weight", Value.Int weight) ]
       ())

let test_basic_lookup () =
  let db = catalog_db () in
  let bolt1 = new_part db "bolt" 5 in
  let _nut = new_part db "nut" 2 in
  let bolt2 = new_part db "bolt" 7 in
  ok (Database.create_index db ~cls:"Parts" ~attr:"Kind");
  let found =
    ok (Database.select db ~cls:"Parts" ~where:Expr.(path [ "Kind" ] = str "bolt") ())
  in
  Alcotest.(check (list surrogate)) "both bolts" [ bolt1; bolt2 ] found;
  check_int "no screws" 0
    (List.length
       (ok (Database.select db ~cls:"Parts" ~where:Expr.(path [ "Kind" ] = str "screw") ())))

let test_index_actually_used () =
  let db = catalog_db () in
  let _ = new_part db "bolt" 5 in
  ok (Database.create_index db ~cls:"Parts" ~attr:"Kind");
  let store = Database.store db in
  let ix = ok (Index.create store ~cls:"Parts" ~attr:"Weight") in
  check_int "fresh index unused" 0 (Index.hits ix);
  let _ = Index.lookup ix (Value.Int 5) in
  check_int "lookup counted" 1 (Index.hits ix);
  (* reversed operand order also hits the Database-registered index *)
  let a =
    ok (Database.select db ~cls:"Parts" ~where:Expr.(str "bolt" = path [ "Kind" ]) ())
  in
  check_int "reversed equality answered" 1 (List.length a);
  (* non-equality predicates fall back to the scan *)
  let b =
    ok (Database.select db ~cls:"Parts" ~where:Expr.(path [ "Weight" ] > int 1) ())
  in
  check_int "scan fallback" 1 (List.length b);
  Index.drop ix

let test_index_tracks_updates () =
  let db = catalog_db () in
  let p = new_part db "bolt" 5 in
  ok (Database.create_index db ~cls:"Parts" ~attr:"Kind");
  let by_kind k =
    ok (Database.select db ~cls:"Parts" ~where:Expr.(path [ "Kind" ] = str k) ())
  in
  check_int "indexed as bolt" 1 (List.length (by_kind "bolt"));
  ok (Database.set_attr db p "Kind" (Value.Str "nut"));
  check_int "old key vacated" 0 (List.length (by_kind "bolt"));
  check_int "new key found" 1 (List.length (by_kind "nut"))

let test_index_tracks_deletion_and_membership () =
  let db = catalog_db () in
  let store = Database.store db in
  let p = new_part db "bolt" 5 in
  let q = new_part db "bolt" 6 in
  ok (Database.create_index db ~cls:"Parts" ~attr:"Kind");
  let bolts () =
    List.length
      (ok (Database.select db ~cls:"Parts" ~where:Expr.(path [ "Kind" ] = str "bolt") ()))
  in
  check_int "two bolts" 2 (bolts ());
  ok (Database.delete db p);
  check_int "deletion tracked" 1 (bolts ());
  ok (Store.remove_from_class store ~cls:"Parts" q);
  check_int "class removal tracked" 0 (bolts ());
  ok (Store.insert_into_class store ~cls:"Parts" q);
  check_int "re-insertion tracked" 1 (bolts ())

let test_index_rejects_inherited_attr () =
  let db = gates_db () in
  expect_error
    (function Errors.Schema_error _ -> true | _ -> false)
    (Database.create_index db ~cls:"Implementations" ~attr:"Length");
  (* own attributes of the same class are fine *)
  ok (Database.create_index db ~cls:"Implementations" ~attr:"TimeBehavior")

let test_index_registration () =
  let db = catalog_db () in
  ok (Database.create_index db ~cls:"Parts" ~attr:"Kind");
  expect_error any_error (Database.create_index db ~cls:"Parts" ~attr:"Kind");
  expect_error any_error (Database.create_index db ~cls:"Nowhere" ~attr:"Kind");
  expect_error any_error (Database.create_index db ~cls:"Parts" ~attr:"Missing");
  Alcotest.(check (list (pair string string)))
    "registered" [ ("Parts", "Kind") ] (Database.indexes db);
  ok (Database.drop_index db ~cls:"Parts" ~attr:"Kind");
  Alcotest.(check (list (pair string string))) "dropped" [] (Database.indexes db)

(* Property: under random create/update/delete sequences, the index agrees
   with the scan for every key. *)
let prop_index_agrees_with_scan =
  QCheck.Test.make ~name:"index agrees with scan under random mutations" ~count:60
    QCheck.(small_list (triple (int_bound 3) (int_bound 4) (int_bound 99)))
    (fun ops ->
      let db = catalog_db () in
      ok (Database.create_index db ~cls:"Parts" ~attr:"Kind");
      let kinds = [| "bolt"; "nut"; "washer"; "screw"; "rivet" |] in
      let parts = ref [] in
      List.iter
        (fun (op, k, w) ->
          let kind = kinds.(k mod Array.length kinds) in
          match op with
          | 0 -> parts := new_part db kind w :: !parts
          | 1 -> (
              match !parts with
              | p :: _ -> ignore (Database.set_attr db p "Kind" (Value.Str kind))
              | [] -> ())
          | 2 -> (
              match !parts with
              | p :: rest ->
                  parts := rest;
                  ignore (Database.delete db ~force:true p)
              | [] -> ())
          | _ -> (
              match !parts with
              | p :: _ -> ignore (Database.set_attr db p "Weight" (Value.Int w))
              | [] -> ()))
        ops;
      Array.for_all
        (fun kind ->
          let where = Expr.(path [ "Kind" ] = str kind) in
          let indexed =
            List.sort Surrogate.compare (ok (Database.select db ~cls:"Parts" ~where ()))
          in
          let scanned =
            List.sort Surrogate.compare
              (ok (Query.select (Database.store db) ~cls:"Parts" ~where ()))
          in
          indexed = scanned)
        kinds)



(* Indexes are runtime structures: after journal recovery they are rebuilt
   over the recovered extent and keep serving. *)
let test_index_over_recovered_database () =
  let dir = Filename.temp_file "compo-index" "" in
  Sys.remove dir;
  let j = ok (Compo_storage.Journal.open_dir dir) in
  let db = Compo_storage.Journal.db j in
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "Part";
         ot_inheritor_in = None;
         ot_attrs = [ { Schema.attr_name = "Kind"; attr_domain = Domain.String } ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  ok (Database.create_class db ~name:"Parts" ~member_type:"Part");
  ok (Compo_storage.Journal.checkpoint j);
  let p1 =
    ok (Compo_storage.Journal.new_object j ~cls:"Parts" ~ty:"Part"
          ~attrs:[ ("Kind", Value.Str "bolt") ] ())
  in
  Compo_storage.Journal.close j;
  let j2 = ok (Compo_storage.Journal.open_dir dir) in
  let db2 = Compo_storage.Journal.db j2 in
  ok (Database.create_index db2 ~cls:"Parts" ~attr:"Kind");
  Alcotest.(check (list surrogate)) "index serves recovered data" [ p1 ]
    (ok (Database.select db2 ~cls:"Parts" ~where:Expr.(path [ "Kind" ] = str "bolt") ()));
  (* and keeps tracking post-recovery mutations *)
  let p2 =
    ok (Compo_storage.Journal.new_object j2 ~cls:"Parts" ~ty:"Part"
          ~attrs:[ ("Kind", Value.Str "bolt") ] ())
  in
  check_int "new object indexed" 2
    (List.length
       (ok (Database.select db2 ~cls:"Parts" ~where:Expr.(path [ "Kind" ] = str "bolt") ())));
  ignore p2;
  Compo_storage.Journal.close j2

let suite =
  ( "index",
    [
      case "basic lookup" test_basic_lookup;
      case "index actually used / scan fallback" test_index_actually_used;
      case "index tracks attribute updates" test_index_tracks_updates;
      case "index tracks deletion and class membership" test_index_tracks_deletion_and_membership;
      case "inherited attributes cannot be indexed" test_index_rejects_inherited_attr;
      case "registration and dropping" test_index_registration;
      QCheck_alcotest.to_alcotest prop_index_agrees_with_scan;
      case "index over a recovered database" test_index_over_recovered_database;
    ] )
