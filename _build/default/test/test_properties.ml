(* Cross-cutting property tests: random schemas survive the DDL round-trip,
   random domains/expressions survive the binary codec, and the expression
   evaluator obeys the boolean algebra it implements. *)

open Compo_core
open Helpers

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let gen_ident prefix =
  QCheck.Gen.map (fun i -> Printf.sprintf "%s%d" prefix i) (QCheck.Gen.int_bound 99)

let rec gen_domain depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneofl [ Domain.Integer; Domain.Real; Domain.Boolean; Domain.String ]
  else
    frequency
      [
        (4, gen_domain 0);
        ( 1,
          map
            (fun cases ->
              Domain.Enum
                (List.sort_uniq String.compare
                   (List.mapi (fun i c -> Printf.sprintf "C%d_%d" i c) cases)))
            (list_size (int_range 1 4) (int_bound 9)) );
        ( 1,
          map
            (fun fields ->
              Domain.Record
                (List.mapi (fun i d -> (Printf.sprintf "f%d" i, d)) fields))
            (list_size (int_range 1 3) (gen_domain (depth - 1))) );
        (1, map (fun d -> Domain.List_of d) (gen_domain (depth - 1)));
        (1, map (fun d -> Domain.Set_of d) (gen_domain (depth - 1)));
        (1, map (fun d -> Domain.Matrix_of d) (gen_domain 0));
      ]

(* A random well-formed schema: a couple of plain object types, an
   inheritance relationship over the first, and an inheritor type. *)
let gen_schema =
  let open QCheck.Gen in
  let gen_attrs =
    map
      (fun ds -> List.mapi (fun i d -> (Printf.sprintf "A%d" i, d)) ds)
      (list_size (int_range 1 4) (gen_domain 2))
  in
  triple gen_attrs gen_attrs (int_range 1 4) >>= fun (attrs1, attrs2, take) ->
  map
    (fun seed ->
      let attr (n, d) = { Schema.attr_name = n; attr_domain = d } in
      let base name attrs =
        {
          Schema.ot_name = name;
          ot_inheritor_in = None;
          ot_attrs = List.map attr attrs;
          ot_subclasses = [];
          ot_subrels = [];
          ot_constraints = [];
        }
      in
      let inheriting =
        List.filteri (fun i _ -> i < take) (List.map fst attrs1)
      in
      ( base (Printf.sprintf "T%d" (seed mod 50)) attrs1,
        base (Printf.sprintf "U%d" (seed mod 50)) attrs2,
        inheriting ))
    (int_bound 1000)

let ( let* ) = Result.bind

let install_random_schema (t1, t2, inheriting) =
  let db = Database.create () in
  let* () = Database.define_obj_type db t1 in
  let* () = Database.define_obj_type db t2 in
  let* () =
    Database.define_inher_rel_type db
      {
        Schema.it_name = "R_" ^ t1.Schema.ot_name;
        it_transmitter = t1.Schema.ot_name;
        it_inheritor = None;
        it_inheriting = inheriting;
        it_attrs = [];
         it_subclasses = [];
        it_constraints = [];
      }
  in
  Database.define_obj_type db
    {
      Schema.ot_name = "I_" ^ t1.Schema.ot_name;
      ot_inheritor_in = Some ("R_" ^ t1.Schema.ot_name);
      ot_attrs = [];
      ot_subclasses = [];
      ot_subrels = [];
      ot_constraints = [];
    }

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_random_schema_ddl_roundtrip =
  QCheck.Test.make ~name:"random schemas round-trip through the DDL" ~count:100
    (QCheck.make gen_schema) (fun spec ->
      let db = Database.create () in
      match install_random_schema spec with
      | exception _ -> QCheck.assume_fail ()
      | Error _ -> QCheck.assume_fail ()
      | Ok () -> (
          let printed = Compo_ddl.Pretty.schema_to_string (Database.schema db) in
          let db2 = Database.create () in
          match Compo_ddl.Elaborate.load_string db2 printed with
          | Error e ->
              QCheck.Test.fail_reportf "reload failed: %s\n%s" (Errors.to_string e)
                printed
          | Ok () ->
              String.equal printed
                (Compo_ddl.Pretty.schema_to_string (Database.schema db2))))

let prop_domain_codec_roundtrip =
  QCheck.Test.make ~name:"domain codec round-trip" ~count:300
    (QCheck.make (gen_domain 3) ~print:Domain.to_string) (fun d ->
      let b = Compo_storage.Codec.Enc.create () in
      Compo_storage.Codec.encode_domain b d;
      match
        Compo_storage.Codec.decode_domain
          (Compo_storage.Codec.Dec.of_string (Compo_storage.Codec.Enc.contents b))
      with
      | Ok d' -> Domain.equal d d'
      | Error _ -> false)

let rec gen_expr depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun i -> Expr.Const (Value.Int i)) small_signed_int;
        oneofl
          [ Expr.Path [ "X" ]; Expr.Path [ "A"; "B" ]; Expr.Sum [ "S"; "V" ] ];
      ]
  else
    frequency
      [
        (2, gen_expr 0);
        ( 3,
          map3
            (fun op a b -> Expr.Binop (op, a, b))
            (oneofl
               [ Expr.Add; Expr.Mul; Expr.Eq; Expr.Lt; Expr.And; Expr.Or; Expr.In ])
            (gen_expr (depth - 1))
            (gen_expr (depth - 1)) );
        (1, map (fun e -> Expr.Unop (Expr.Not, e)) (gen_expr (depth - 1)));
        ( 1,
          map
            (fun e -> Expr.Count ([ "C" ], Some e))
            (gen_expr (depth - 1)) );
        ( 1,
          map
            (fun e -> Expr.Forall ([ ("x", [ "C" ]) ], e))
            (gen_expr (depth - 1)) );
      ]

let prop_expr_codec_roundtrip =
  QCheck.Test.make ~name:"expression codec round-trip" ~count:300
    (QCheck.make (gen_expr 4) ~print:Expr.to_string) (fun e ->
      let b = Compo_storage.Codec.Enc.create () in
      Compo_storage.Codec.encode_expr b e;
      match
        Compo_storage.Codec.decode_expr
          (Compo_storage.Codec.Dec.of_string (Compo_storage.Codec.Enc.contents b))
      with
      | Ok e' -> Expr.equal e e'
      | Error _ -> false)

(* Boolean algebra over the evaluator: evaluate random boolean formulas
   over three boolean attributes and check De Morgan / double negation. *)
let bool_env () =
  let db = Database.create () in
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "B";
         ot_inheritor_in = None;
         ot_attrs =
           List.map
             (fun n -> { Schema.attr_name = n; attr_domain = Domain.Boolean })
             [ "P"; "Q"; "R" ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  db

let rec gen_bool_expr depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneofl
      [
        Expr.Path [ "P" ];
        Expr.Path [ "Q" ];
        Expr.Path [ "R" ];
        Expr.Const (Value.Bool true);
        Expr.Const (Value.Bool false);
      ]
  else
    frequency
      [
        (2, gen_bool_expr 0);
        ( 3,
          map3
            (fun op a b -> Expr.Binop (op, a, b))
            (oneofl [ Expr.And; Expr.Or ])
            (gen_bool_expr (depth - 1))
            (gen_bool_expr (depth - 1)) );
        (1, map (fun e -> Expr.Unop (Expr.Not, e)) (gen_bool_expr (depth - 1)));
      ]

let eval_with db obj e =
  match Eval.eval_bool (Eval.env ~self:obj (Database.store db)) e with
  | Ok b -> b
  | Error err -> Alcotest.failf "eval failed: %s" (Errors.to_string err)

let prop_de_morgan =
  QCheck.Test.make ~name:"evaluator satisfies De Morgan" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair (pair (gen_bool_expr 3) (gen_bool_expr 3)) (triple bool bool bool))
       ~print:(fun ((a, b), _) -> Expr.to_string a ^ " / " ^ Expr.to_string b))
    (fun ((a, b), (p, q, r)) ->
      let db = bool_env () in
      let obj =
        Result.get_ok
          (Database.new_object db ~ty:"B"
             ~attrs:
               [ ("P", Value.Bool p); ("Q", Value.Bool q); ("R", Value.Bool r) ]
             ())
      in
      let lhs = eval_with db obj Expr.(not_ (a && b)) in
      let rhs = eval_with db obj Expr.(not_ a || not_ b) in
      let dneg = eval_with db obj Expr.(not_ (not_ a)) = eval_with db obj a in
      Bool.equal lhs rhs && dneg)

(* count(C) where filter + count(C) where (not filter) = count(C) *)
let prop_count_partition =
  QCheck.Test.make ~name:"count partitions under a filter" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 0 12) (int_bound 20)))
    (fun weights ->
      let db = Database.create () in
      Result.get_ok
        (Database.define_obj_type db
           {
             Schema.ot_name = "Item";
             ot_inheritor_in = None;
             ot_attrs = [ { Schema.attr_name = "W"; attr_domain = Domain.Integer } ];
             ot_subclasses = [];
             ot_subrels = [];
             ot_constraints = [];
           });
      Result.get_ok
        (Database.define_obj_type db
           {
             Schema.ot_name = "Box";
             ot_inheritor_in = None;
             ot_attrs = [];
             ot_subclasses =
               [ { Schema.sc_name = "Items"; sc_member = Schema.Named_type "Item" } ];
             ot_subrels = [];
             ot_constraints = [];
           });
      let box = Result.get_ok (Database.new_object db ~ty:"Box" ()) in
      List.iter
        (fun w ->
          ignore
            (Result.get_ok
               (Database.new_subobject db ~parent:box ~subclass:"Items"
                  ~attrs:[ ("W", Value.Int w) ]
                  ())))
        weights;
      let count e =
        match Eval.eval (Eval.env ~self:box (Database.store db)) e with
        | Ok (Value.Int n) -> n
        | _ -> -1
      in
      let filter = Expr.(path [ "Items"; "W" ] > int 10) in
      let yes = count (Expr.count ~where:filter [ "Items" ]) in
      let no = count (Expr.count ~where:(Expr.not_ filter) [ "Items" ]) in
      let total = count (Expr.count [ "Items" ]) in
      yes + no = total && total = List.length weights)

let suite =
  ( "properties",
    [
      QCheck_alcotest.to_alcotest prop_random_schema_ddl_roundtrip;
      QCheck_alcotest.to_alcotest prop_domain_codec_roundtrip;
      QCheck_alcotest.to_alcotest prop_expr_codec_roundtrip;
      QCheck_alcotest.to_alcotest prop_de_morgan;
      QCheck_alcotest.to_alcotest prop_count_partition;
    ] )
