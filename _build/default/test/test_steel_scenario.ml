(* F5: the steel-construction example of section 5 / Figure 5. *)

open Compo_core
open Helpers
module S = Compo_scenarios.Steel

(* Build the paper's scenario: a structure of one girder and one plate,
   screwed together through matching bores. *)
let build_structure db =
  let girder_iface =
    ok
      (S.new_girder_interface db ~length:200 ~height:10 ~width:10
         ~bores:[ (10, 4, (10, 0)); (10, 4, (190, 0)) ])
  in
  let plate_iface =
    ok
      (S.new_plate_interface db ~thickness:4 ~area:(50, 50)
         ~bores:[ (10, 4, (10, 0)); (10, 4, (40, 0)) ])
  in
  let structure = ok (S.new_structure db ~designer:"Pegels" ~description:"frame") in
  let g = ok (S.add_girder db ~structure ~girder_interface:girder_iface) in
  let p = ok (S.add_plate db ~structure ~plate_interface:plate_iface) in
  (structure, girder_iface, plate_iface, g, p)

let test_structure_inherits_component_data () =
  let db = steel_db () in
  let _, _, _, g, p = build_structure db in
  check_value "girder length through component" (Value.Int 200)
    (ok (Database.get_attr db g "Length"));
  check_value "plate thickness through component" (Value.Int 4)
    (ok (Database.get_attr db p "Thickness"));
  check_int "girder bores visible" 2 (List.length (ok (S.bores_of db g)));
  check_int "plate bores visible" 2 (List.length (ok (S.bores_of db p)))

let test_screwing_hides_bolt_and_nut () =
  let db = steel_db () in
  let structure, _, _, g, p = build_structure db in
  let g_bore = List.hd (ok (S.bores_of db g)) in
  let p_bore = List.hd (ok (S.bores_of db p)) in
  let bolt = ok (S.new_bolt db ~length:9 ~diameter:10) in
  let nut = ok (S.new_nut db ~length:1 ~diameter:10) in
  let screwing =
    ok (S.screw db ~structure ~bores:[ g_bore; p_bore ] ~bolt ~nut ~strength:55)
  in
  (* "bolds and nuts are hidden in the relationship ScrewingType" *)
  let bolt_subs = ok (Database.subclass_members db screwing "Bolt") in
  check_int "one bolt subobject" 1 (List.length bolt_subs);
  check_value "bolt data inherited from catalog part" (Value.Int 9)
    (ok (Database.get_attr db (List.hd bolt_subs) "Length"));
  check_value "relationship attribute" (Value.Int 55)
    (ok (Database.get_attr db screwing "Strength"));
  check_no_violations "screwing satisfies section 5 constraints"
    (ok (Database.validate db screwing));
  (* catalog update propagates into every screwing that uses the part *)
  ok (Database.set_attr db bolt "Length" (Value.Int 9));
  check_bool "link stamped stale for adaptation" true
    (let links = ok (Database.links_of db bolt) in
     List.exists (fun l -> ok (Database.is_stale db l)) links)

let test_girder_used_in_two_structures () =
  (* reusability of designed parts (section 2): one girder interface used
     as a component by two different structures *)
  let db = steel_db () in
  let iface =
    ok (S.new_girder_interface db ~length:100 ~height:10 ~width:10 ~bores:[ (10, 2, (0, 0)) ])
  in
  let s1 = ok (S.new_structure db ~designer:"a" ~description:"one") in
  let s2 = ok (S.new_structure db ~designer:"b" ~description:"two") in
  let _ = ok (S.add_girder db ~structure:s1 ~girder_interface:iface) in
  let _ = ok (S.add_girder db ~structure:s2 ~girder_interface:iface) in
  Alcotest.(check (list surrogate))
    "where-used lists both structures" [ s1; s2 ]
    (List.sort Surrogate.compare (ok (Database.where_used db iface)));
  (* a change to the shared girder is visible in both structures *)
  ok (Database.set_attr db iface "Length" (Value.Int 120));
  List.iter
    (fun s ->
      let comp = List.hd (ok (Database.subclass_members db s "Girders")) in
      check_value "updated everywhere" (Value.Int 120)
        (ok (Database.get_attr db comp "Length")))
    [ s1; s2 ]

let test_material_is_local_to_girder () =
  let db = steel_db () in
  let iface =
    ok (S.new_girder_interface db ~length:100 ~height:10 ~width:10 ~bores:[])
  in
  let wood = ok (S.new_girder db ~interface:iface ~material:"wood") in
  let metal = ok (S.new_girder db ~interface:iface ~material:"metal") in
  check_value "wood" (Value.Enum_case "wood") (ok (Database.get_attr db wood "Material"));
  check_value "metal" (Value.Enum_case "metal") (ok (Database.get_attr db metal "Material"));
  (* both implementations share the interface data *)
  check_value "shared length" (ok (Database.get_attr db wood "Length"))
    (ok (Database.get_attr db metal "Length"))

let test_structure_expansion_and_bom () =
  let db = steel_db () in
  let structure =
    ok (Compo_scenarios.Workload.screwed_structure db ~girders:3 ~bores_per_joint:2)
  in
  let bom = ok (Database.bill_of_materials db structure) in
  (* three girder interfaces and, per joint, one bolt and one nut *)
  let total_uses = List.fold_left (fun acc (_, n) -> acc + n) 0 bom in
  check_int "3 girders + 2 joints * (bolt+nut)" 7 total_uses;
  let node = ok (Database.expand db structure) in
  check_bool "expansion materializes components" true (Composite.node_count node > 10)

let test_validate_all_clean () =
  let db = steel_db () in
  let structure, _, _, g, p = build_structure db in
  let g_bores = ok (S.bores_of db g) in
  let p_bores = ok (S.bores_of db p) in
  let bolt = ok (S.new_bolt db ~length:9 ~diameter:10) in
  let nut = ok (S.new_nut db ~length:1 ~diameter:10) in
  let _ =
    ok
      (S.screw db ~structure
         ~bores:[ List.hd g_bores; List.hd p_bores ]
         ~bolt ~nut ~strength:10)
  in
  check_no_violations "whole database validates" (Database.validate_all db)

let suite =
  ( "steel-scenario",
    [
      case "F5: components transmit data into the structure" test_structure_inherits_component_data;
      case "F5: screwings hide bolt and nut (section 5)" test_screwing_hides_bolt_and_nut;
      case "section 2: part reuse across structures" test_girder_used_in_two_structures;
      case "material is local, interface shared" test_material_is_local_to_girder;
      case "expansion and bill of materials" test_structure_expansion_and_bom;
      case "whole-database validation" test_validate_all_clean;
    ] )
