(** Binary encoding of values, domains, expressions, schemas, and store
    contents, used by the snapshot and WAL layers.

    The format is length-prefixed and tagged; decoding validates tags and
    bounds and fails with [Io_error] on malformed input rather than
    raising. *)

open Compo_core

(** Append-only encoder. *)
module Enc : sig
  type t

  val create : unit -> t
  val byte : t -> int -> unit
  val int : t -> int -> unit
  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val string : t -> string -> unit
  val list : t -> ('a -> unit) -> 'a list -> unit
  val option : t -> ('a -> unit) -> 'a option -> unit
  val contents : t -> string
end

(** Cursor-based decoder. *)
module Dec : sig
  type t

  val of_string : string -> t
  val byte : t -> (int, Errors.t) result
  val int : t -> (int, Errors.t) result
  val bool : t -> (bool, Errors.t) result
  val float : t -> (float, Errors.t) result
  val string : t -> (string, Errors.t) result
  val list : t -> (unit -> ('a, Errors.t) result) -> ('a list, Errors.t) result
  val option : t -> (unit -> ('a, Errors.t) result) -> ('a option, Errors.t) result
  val at_end : t -> bool
end

val crc32 : string -> int32
(** Standard CRC-32 (IEEE polynomial), for record checksums. *)

val encode_value : Enc.t -> Value.t -> unit
val decode_value : Dec.t -> (Value.t, Errors.t) result
val encode_domain : Enc.t -> Domain.t -> unit
val decode_domain : Dec.t -> (Domain.t, Errors.t) result
val encode_expr : Enc.t -> Expr.t -> unit
val decode_expr : Dec.t -> (Expr.t, Errors.t) result

val encode_entry : Schema.t -> Schema.entry -> string
(** One schema entry as a standalone blob (used by WAL [Define] records).
    The registry is needed to embed inline subclass member types. *)

val decode_entry : Dec.t -> (Schema.entry, Errors.t) result

val encode_schema : Schema.t -> string
val decode_schema : string -> (Schema.t, Errors.t) result
(** Round-trips named domains and all type entries in definition order. *)

val encode_store : Store.t -> string
val decode_store : Schema.t -> string -> (Store.t, Errors.t) result
(** Round-trips all entities (attributes, participants, containment,
    bindings), classes, and the surrogate generator position. *)
