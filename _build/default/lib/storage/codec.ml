open Compo_core

let ( let* ) = Result.bind
let truncated () = Error (Errors.Io_error "truncated input")
let bad_tag what tag =
  Error (Errors.Io_error (Printf.sprintf "bad %s tag 0x%02x" what tag))

module Enc = Binary.Enc
module Dec = Binary.Dec

let crc32 = Binary.crc32

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

let rec encode_value b (v : Value.t) =
  match v with
  | Value.Null -> Enc.byte b 0
  | Value.Bool x ->
      Enc.byte b 1;
      Enc.bool b x
  | Value.Int x ->
      Enc.byte b 2;
      Enc.int b x
  | Value.Real x ->
      Enc.byte b 3;
      Enc.float b x
  | Value.Str x ->
      Enc.byte b 4;
      Enc.string b x
  | Value.Enum_case x ->
      Enc.byte b 5;
      Enc.string b x
  | Value.Record fields ->
      Enc.byte b 6;
      Enc.list b
        (fun (n, fv) ->
          Enc.string b n;
          encode_value b fv)
        fields
  | Value.List vs ->
      Enc.byte b 7;
      Enc.list b (encode_value b) vs
  | Value.Set vs ->
      Enc.byte b 8;
      Enc.list b (encode_value b) vs
  | Value.Matrix rows ->
      Enc.byte b 9;
      Enc.int b (Array.length rows);
      Array.iter
        (fun row ->
          Enc.int b (Array.length row);
          Array.iter (encode_value b) row)
        rows
  | Value.Tuple vs ->
      Enc.byte b 10;
      Enc.list b (encode_value b) vs
  | Value.Ref s ->
      Enc.byte b 11;
      Enc.int b (Surrogate.to_int s)

let rec decode_value d =
  let* tag = Dec.byte d in
  match tag with
  | 0 -> Ok Value.Null
  | 1 ->
      let* x = Dec.bool d in
      Ok (Value.Bool x)
  | 2 ->
      let* x = Dec.int d in
      Ok (Value.Int x)
  | 3 ->
      let* x = Dec.float d in
      Ok (Value.Real x)
  | 4 ->
      let* x = Dec.string d in
      Ok (Value.Str x)
  | 5 ->
      let* x = Dec.string d in
      Ok (Value.Enum_case x)
  | 6 ->
      let* fields =
        Dec.list d (fun () ->
            let* n = Dec.string d in
            let* v = decode_value d in
            Ok (n, v))
      in
      Ok (Value.Record fields)
  | 7 ->
      let* vs = Dec.list d (fun () -> decode_value d) in
      Ok (Value.List vs)
  | 8 ->
      let* vs = Dec.list d (fun () -> decode_value d) in
      Ok (Value.Set vs)
  | 9 ->
      let* nrows = Dec.int d in
      if nrows < 0 then truncated ()
      else
        let rec rows acc i =
          if i = 0 then Ok (Value.Matrix (Array.of_list (List.rev acc)))
          else
            let* ncols = Dec.int d in
            if ncols < 0 then truncated ()
            else
              let rec cols acc j =
                if j = 0 then Ok (Array.of_list (List.rev acc))
                else
                  let* v = decode_value d in
                  cols (v :: acc) (j - 1)
              in
              let* row = cols [] ncols in
              rows (row :: acc) (i - 1)
        in
        rows [] nrows
  | 10 ->
      let* vs = Dec.list d (fun () -> decode_value d) in
      Ok (Value.Tuple vs)
  | 11 ->
      let* s = Dec.int d in
      Ok (Value.Ref (Surrogate.of_int s))
  | t -> bad_tag "value" t

(* ------------------------------------------------------------------ *)
(* Domains                                                             *)

let rec encode_domain b (d : Domain.t) =
  match d with
  | Domain.Integer -> Enc.byte b 0
  | Domain.Real -> Enc.byte b 1
  | Domain.Boolean -> Enc.byte b 2
  | Domain.String -> Enc.byte b 3
  | Domain.Enum cases ->
      Enc.byte b 4;
      Enc.list b (Enc.string b) cases
  | Domain.Record fields ->
      Enc.byte b 5;
      Enc.list b
        (fun (n, fd) ->
          Enc.string b n;
          encode_domain b fd)
        fields
  | Domain.List_of d ->
      Enc.byte b 6;
      encode_domain b d
  | Domain.Set_of d ->
      Enc.byte b 7;
      encode_domain b d
  | Domain.Matrix_of d ->
      Enc.byte b 8;
      encode_domain b d
  | Domain.Tuple ds ->
      Enc.byte b 9;
      Enc.list b (encode_domain b) ds
  | Domain.Ref ty ->
      Enc.byte b 10;
      Enc.option b (Enc.string b) ty
  | Domain.Named n ->
      Enc.byte b 11;
      Enc.string b n

let rec decode_domain dd =
  let* tag = Dec.byte dd in
  match tag with
  | 0 -> Ok Domain.Integer
  | 1 -> Ok Domain.Real
  | 2 -> Ok Domain.Boolean
  | 3 -> Ok Domain.String
  | 4 ->
      let* cases = Dec.list dd (fun () -> Dec.string dd) in
      Ok (Domain.Enum cases)
  | 5 ->
      let* fields =
        Dec.list dd (fun () ->
            let* n = Dec.string dd in
            let* fd = decode_domain dd in
            Ok (n, fd))
      in
      Ok (Domain.Record fields)
  | 6 ->
      let* d = decode_domain dd in
      Ok (Domain.List_of d)
  | 7 ->
      let* d = decode_domain dd in
      Ok (Domain.Set_of d)
  | 8 ->
      let* d = decode_domain dd in
      Ok (Domain.Matrix_of d)
  | 9 ->
      let* ds = Dec.list dd (fun () -> decode_domain dd) in
      Ok (Domain.Tuple ds)
  | 10 ->
      let* ty = Dec.option dd (fun () -> Dec.string dd) in
      Ok (Domain.Ref ty)
  | 11 ->
      let* n = Dec.string dd in
      Ok (Domain.Named n)
  | t -> bad_tag "domain" t

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let unop_tag = function Expr.Not -> 0 | Expr.Neg -> 1

let binop_tag = function
  | Expr.Add -> 0
  | Expr.Sub -> 1
  | Expr.Mul -> 2
  | Expr.Div -> 3
  | Expr.Eq -> 4
  | Expr.Ne -> 5
  | Expr.Lt -> 6
  | Expr.Le -> 7
  | Expr.Gt -> 8
  | Expr.Ge -> 9
  | Expr.And -> 10
  | Expr.Or -> 11
  | Expr.In -> 12

let binop_of_tag = function
  | 0 -> Ok Expr.Add
  | 1 -> Ok Expr.Sub
  | 2 -> Ok Expr.Mul
  | 3 -> Ok Expr.Div
  | 4 -> Ok Expr.Eq
  | 5 -> Ok Expr.Ne
  | 6 -> Ok Expr.Lt
  | 7 -> Ok Expr.Le
  | 8 -> Ok Expr.Gt
  | 9 -> Ok Expr.Ge
  | 10 -> Ok Expr.And
  | 11 -> Ok Expr.Or
  | 12 -> Ok Expr.In
  | t -> bad_tag "binop" t

let encode_path b p = Enc.list b (Enc.string b) p
let decode_path d = Dec.list d (fun () -> Dec.string d)

let rec encode_expr b (e : Expr.t) =
  match e with
  | Expr.Const v ->
      Enc.byte b 0;
      encode_value b v
  | Expr.Path p ->
      Enc.byte b 1;
      encode_path b p
  | Expr.Count (p, filter) ->
      Enc.byte b 2;
      encode_path b p;
      Enc.option b (encode_expr b) filter
  | Expr.Sum p ->
      Enc.byte b 3;
      encode_path b p
  | Expr.Unop (op, e) ->
      Enc.byte b 4;
      Enc.byte b (unop_tag op);
      encode_expr b e
  | Expr.Binop (op, x, y) ->
      Enc.byte b 5;
      Enc.byte b (binop_tag op);
      encode_expr b x;
      encode_expr b y
  | Expr.Forall (binders, body) ->
      Enc.byte b 6;
      encode_binders b binders;
      encode_expr b body
  | Expr.Exists (binders, body) ->
      Enc.byte b 7;
      encode_binders b binders;
      encode_expr b body

and encode_binders b binders =
  Enc.list b
    (fun (v, p) ->
      Enc.string b v;
      encode_path b p)
    binders

let rec decode_expr d =
  let* tag = Dec.byte d in
  match tag with
  | 0 ->
      let* v = decode_value d in
      Ok (Expr.Const v)
  | 1 ->
      let* p = decode_path d in
      Ok (Expr.Path p)
  | 2 ->
      let* p = decode_path d in
      let* filter = Dec.option d (fun () -> decode_expr d) in
      Ok (Expr.Count (p, filter))
  | 3 ->
      let* p = decode_path d in
      Ok (Expr.Sum p)
  | 4 ->
      let* op = Dec.byte d in
      let* e = decode_expr d in
      let* op =
        match op with 0 -> Ok Expr.Not | 1 -> Ok Expr.Neg | t -> bad_tag "unop" t
      in
      Ok (Expr.Unop (op, e))
  | 5 ->
      let* op_tag = Dec.byte d in
      let* op = binop_of_tag op_tag in
      let* x = decode_expr d in
      let* y = decode_expr d in
      Ok (Expr.Binop (op, x, y))
  | 6 ->
      let* binders = decode_binders d in
      let* body = decode_expr d in
      Ok (Expr.Forall (binders, body))
  | 7 ->
      let* binders = decode_binders d in
      let* body = decode_expr d in
      Ok (Expr.Exists (binders, body))
  | t -> bad_tag "expr" t

and decode_binders d =
  Dec.list d (fun () ->
      let* v = Dec.string d in
      let* p = decode_path d in
      Ok (v, p))

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)

let encode_attr b (a : Schema.attr_def) =
  Enc.string b a.attr_name;
  encode_domain b a.attr_domain

let decode_attr d =
  let* attr_name = Dec.string d in
  let* attr_domain = decode_domain d in
  Ok { Schema.attr_name; attr_domain }

let encode_constraint b (c : Schema.named_constraint) =
  Enc.string b c.c_name;
  encode_expr b c.c_expr

let decode_constraint d =
  let* c_name = Dec.string d in
  let* c_expr = decode_expr d in
  Ok { Schema.c_name; c_expr }

(* Subclasses are stored with resolved (registered) member type names; the
   inline types themselves appear as separate entries in definition order,
   so decoding re-registers them before their owners reference them...
   except that owners are registered before their inline types at define
   time.  We therefore encode subclasses by re-inlining: a member name
   containing '.' is looked up and embedded. *)
let rec encode_subclass schema b (sc : Schema.subclass_def) =
  Enc.string b sc.sc_name;
  let member = Schema.subclass_member_type schema sc in
  if String.contains member '.' then begin
    Enc.byte b 1;
    match Schema.find_obj_type schema member with
    | Ok ot -> encode_obj_type schema b { ot with Schema.ot_name = "" }
    | Error _ -> (* unreachable for a well-formed registry *) Enc.string b ""
  end
  else begin
    Enc.byte b 0;
    Enc.string b member
  end

and encode_subrel b (sr : Schema.subrel_def) =
  Enc.string b sr.sr_name;
  Enc.string b sr.sr_rel_type;
  Enc.option b (Enc.string b) sr.sr_binder;
  Enc.option b (encode_expr b) sr.sr_where

and encode_obj_type schema b (o : Schema.obj_type) =
  Enc.string b o.ot_name;
  Enc.option b (Enc.string b) o.ot_inheritor_in;
  Enc.list b (encode_attr b) o.ot_attrs;
  Enc.list b (encode_subclass schema b) o.ot_subclasses;
  Enc.list b (encode_subrel b) o.ot_subrels;
  Enc.list b (encode_constraint b) o.ot_constraints

let rec decode_subclass d =
  let* sc_name = Dec.string d in
  let* tag = Dec.byte d in
  match tag with
  | 0 ->
      let* member = Dec.string d in
      Ok { Schema.sc_name; sc_member = Schema.Named_type member }
  | 1 ->
      let* inline = decode_obj_type d in
      Ok { Schema.sc_name; sc_member = Schema.Inline inline }
  | t -> bad_tag "subclass" t

and decode_subrel d =
  let* sr_name = Dec.string d in
  let* sr_rel_type = Dec.string d in
  let* sr_binder = Dec.option d (fun () -> Dec.string d) in
  let* sr_where = Dec.option d (fun () -> decode_expr d) in
  Ok { Schema.sr_name; sr_rel_type; sr_binder; sr_where }

and decode_obj_type d =
  let* ot_name = Dec.string d in
  let* ot_inheritor_in = Dec.option d (fun () -> Dec.string d) in
  let* ot_attrs = Dec.list d (fun () -> decode_attr d) in
  let* ot_subclasses = Dec.list d (fun () -> decode_subclass d) in
  let* ot_subrels = Dec.list d (fun () -> decode_subrel d) in
  let* ot_constraints = Dec.list d (fun () -> decode_constraint d) in
  Ok { Schema.ot_name; ot_inheritor_in; ot_attrs; ot_subclasses; ot_subrels; ot_constraints }

let encode_participant b (p : Schema.participant) =
  Enc.string b p.p_name;
  Enc.bool b (p.p_card = Schema.Many);
  Enc.option b (Enc.string b) p.p_type

let decode_participant d =
  let* p_name = Dec.string d in
  let* many = Dec.bool d in
  let* p_type = Dec.option d (fun () -> Dec.string d) in
  Ok { Schema.p_name; p_card = (if many then Schema.Many else Schema.One); p_type }

let encode_entry schema b = function
  | Schema.Obj_type o ->
      Enc.byte b 0;
      encode_obj_type schema b o
  | Schema.Rel_type r ->
      Enc.byte b 1;
      Enc.string b r.rt_name;
      Enc.list b (encode_participant b) r.rt_relates;
      Enc.list b (encode_attr b) r.rt_attrs;
      Enc.list b (encode_subclass schema b) r.rt_subclasses;
      Enc.list b (encode_constraint b) r.rt_constraints
  | Schema.Inher_type i ->
      Enc.byte b 2;
      Enc.string b i.it_name;
      Enc.string b i.it_transmitter;
      Enc.option b (Enc.string b) i.it_inheritor;
      Enc.list b (Enc.string b) i.it_inheriting;
      Enc.list b (encode_attr b) i.it_attrs;
      Enc.list b (encode_subclass schema b) i.it_subclasses;
      Enc.list b (encode_constraint b) i.it_constraints

let decode_entry d =
  let* tag = Dec.byte d in
  match tag with
  | 0 ->
      let* o = decode_obj_type d in
      Ok (Schema.Obj_type o)
  | 1 ->
      let* rt_name = Dec.string d in
      let* rt_relates = Dec.list d (fun () -> decode_participant d) in
      let* rt_attrs = Dec.list d (fun () -> decode_attr d) in
      let* rt_subclasses = Dec.list d (fun () -> decode_subclass d) in
      let* rt_constraints = Dec.list d (fun () -> decode_constraint d) in
      Ok (Schema.Rel_type { rt_name; rt_relates; rt_attrs; rt_subclasses; rt_constraints })
  | 2 ->
      let* it_name = Dec.string d in
      let* it_transmitter = Dec.string d in
      let* it_inheritor = Dec.option d (fun () -> Dec.string d) in
      let* it_inheriting = Dec.list d (fun () -> Dec.string d) in
      let* it_attrs = Dec.list d (fun () -> decode_attr d) in
      let* it_subclasses = Dec.list d (fun () -> decode_subclass d) in
      let* it_constraints = Dec.list d (fun () -> decode_constraint d) in
      Ok
        (Schema.Inher_type
           {
             it_name;
             it_transmitter;
             it_inheritor;
             it_inheriting;
             it_attrs;
             it_subclasses;
             it_constraints;
           })
  | t -> bad_tag "schema entry" t

let encode_entry schema entry =
  let b = Enc.create () in
  encode_entry schema b entry;
  Enc.contents b

let encode_schema schema =
  let b = Enc.create () in
  Enc.list b
    (fun (n, d) ->
      Enc.string b n;
      encode_domain b d)
    (Schema.domains schema);
  let top_level =
    List.filter
      (fun entry ->
        match entry with
        | Schema.Obj_type o -> not (String.contains o.Schema.ot_name '.')
        | Schema.Rel_type _ | Schema.Inher_type _ -> true)
      (Schema.entries schema)
  in
  Enc.list b (fun e -> Enc.string b (encode_entry schema e)) top_level;
  Enc.contents b

let decode_schema blob =
  let d = Dec.of_string blob in
  let schema = Schema.create () in
  let* domains =
    Dec.list d (fun () ->
        let* n = Dec.string d in
        let* dom = decode_domain d in
        Ok (n, dom))
  in
  let* () =
    List.fold_left
      (fun acc (n, dom) ->
        let* () = acc in
        Schema.define_domain schema n dom)
      (Ok ()) domains
  in
  let* entries =
    Dec.list d (fun () ->
        let* blob = Dec.string d in
        decode_entry (Dec.of_string blob))
  in
  let* () =
    List.fold_left
      (fun acc entry ->
        let* () = acc in
        match entry with
        | Schema.Obj_type o -> Schema.define_obj_type schema o
        | Schema.Rel_type r -> Schema.define_rel_type schema r
        | Schema.Inher_type i -> Schema.define_inher_rel_type schema i)
      (Ok ()) entries
  in
  Ok schema

(* ------------------------------------------------------------------ *)
(* Store                                                               *)

let encode_smap b enc_v m =
  Enc.int b (Store.Smap.cardinal m);
  Store.Smap.iter
    (fun k v ->
      Enc.string b k;
      enc_v v)
    m

let decode_smap d dec_v =
  let* n = Dec.int d in
  if n < 0 then truncated ()
  else
    let rec go acc i =
      if i = 0 then Ok acc
      else
        let* k = Dec.string d in
        let* v = dec_v () in
        go (Store.Smap.add k v acc) (i - 1)
    in
    go Store.Smap.empty n

let encode_entity b (e : Store.entity) =
  Enc.int b (Surrogate.to_int e.Store.id);
  Enc.string b e.Store.type_name;
  Enc.byte b
    (match e.Store.kind with
    | Store.Object_entity -> 0
    | Store.Relationship_entity -> 1
    | Store.Inheritance_link -> 2);
  encode_smap b (encode_value b) e.Store.attrs;
  encode_smap b (encode_value b) e.Store.participants;
  let surrogates ids = Enc.list b (fun s -> Enc.int b (Surrogate.to_int s)) ids in
  encode_smap b surrogates e.Store.subobjs;
  encode_smap b surrogates e.Store.subrels;
  Enc.option b (fun s -> Enc.int b (Surrogate.to_int s)) e.Store.owner;
  Enc.option b
    (fun (bnd : Store.binding) ->
      Enc.int b (Surrogate.to_int bnd.Store.b_link);
      Enc.string b bnd.Store.b_via;
      Enc.int b (Surrogate.to_int bnd.Store.b_transmitter))
    e.Store.bound;
  surrogates e.Store.inheritor_links;
  Enc.list b (Enc.string b) e.Store.classes_of

let decode_entity d =
  let* id = Dec.int d in
  let* type_name = Dec.string d in
  let* kind_tag = Dec.byte d in
  let* kind =
    match kind_tag with
    | 0 -> Ok Store.Object_entity
    | 1 -> Ok Store.Relationship_entity
    | 2 -> Ok Store.Inheritance_link
    | t -> bad_tag "entity kind" t
  in
  let* attrs = decode_smap d (fun () -> decode_value d) in
  let* participants = decode_smap d (fun () -> decode_value d) in
  let surrogate_list () =
    Dec.list d (fun () ->
        let* i = Dec.int d in
        Ok (Surrogate.of_int i))
  in
  let* subobjs = decode_smap d surrogate_list in
  let* subrels = decode_smap d surrogate_list in
  let* owner =
    Dec.option d (fun () ->
        let* i = Dec.int d in
        Ok (Surrogate.of_int i))
  in
  let* bound =
    Dec.option d (fun () ->
        let* link = Dec.int d in
        let* via = Dec.string d in
        let* transmitter = Dec.int d in
        Ok
          {
            Store.b_link = Surrogate.of_int link;
            b_via = via;
            b_transmitter = Surrogate.of_int transmitter;
          })
  in
  let* inheritor_links = surrogate_list () in
  let* classes_of = Dec.list d (fun () -> Dec.string d) in
  Ok
    {
      Store.id = Surrogate.of_int id;
      type_name;
      kind;
      attrs;
      participants;
      subobjs;
      subrels;
      owner;
      bound;
      inheritor_links;
      classes_of;
    }

let encode_store store =
  let b = Enc.create () in
  let entities =
    List.sort
      (fun (a : Store.entity) b -> Surrogate.compare a.Store.id b.Store.id)
      (Store.fold store (fun acc e -> e :: acc) [])
  in
  Enc.list b (encode_entity b) entities;
  Enc.list b
    (fun name ->
      Enc.string b name;
      Enc.string b (Result.get_ok (Store.class_member_type store name));
      Enc.list b
        (fun s -> Enc.int b (Surrogate.to_int s))
        (Result.get_ok (Store.class_members store name)))
    (Store.class_names store);
  Enc.int b (Surrogate.Gen.current (Store.generator store));
  Enc.contents b

let decode_store schema blob =
  let d = Dec.of_string blob in
  let store = Store.create schema in
  let* entities = Dec.list d (fun () -> decode_entity d) in
  List.iter (Store.restore_entity store) entities;
  let* () =
    let* classes =
      Dec.list d (fun () ->
          let* name = Dec.string d in
          let* member_type = Dec.string d in
          let* members =
            Dec.list d (fun () ->
                let* i = Dec.int d in
                Ok (Surrogate.of_int i))
          in
          Ok (name, member_type, members))
    in
    List.iter
      (fun (name, member_type, members) ->
        Store.restore_class store ~name ~member_type ~members)
      classes;
    Ok ()
  in
  let* next = Dec.int d in
  Surrogate.Gen.mark_used (Store.generator store) (Surrogate.of_int (next - 1));
  Ok store
