(** Full-database snapshots: schema and store in one checksummed file. *)

open Compo_core

val save : string -> Database.t -> (unit, Errors.t) result
(** Atomic: writes to a temporary file in the same directory, then
    renames. *)

val load : string -> (Database.t, Errors.t) result
(** Verifies magic and checksum before decoding. *)
