(** Durable databases: snapshot + write-ahead log + recovery.

    A journaled database lives in a directory holding [snapshot.bin] and
    [wal.log].  {!open_dir} recovers by loading the snapshot (if any) and
    replaying the log's clean prefix; every mutating operation offered
    here is logged before it is applied.  {!checkpoint} collapses the log
    into a fresh snapshot. *)

open Compo_core

type t

val open_dir : string -> (t, Errors.t) result
(** Creates the directory if needed.  Returns the recovered database
    handle. *)

val db : t -> Database.t
val recovered_clean : t -> bool
(** False when recovery skipped a torn WAL tail. *)

val wal_records_replayed : t -> int

(** {1 Logged schema definition} *)

val define_domain : t -> string -> Domain.t -> (unit, Errors.t) result
val define_obj_type : t -> Schema.obj_type -> (unit, Errors.t) result
val define_rel_type : t -> Schema.rel_type -> (unit, Errors.t) result
val define_inher_rel_type : t -> Schema.inher_rel_type -> (unit, Errors.t) result

(** {1 Logged mutations} *)

val create_class : t -> name:string -> member_type:string -> (unit, Errors.t) result

val new_object :
  t -> ?cls:string -> ty:string -> ?attrs:(string * Value.t) list -> unit ->
  (Surrogate.t, Errors.t) result

val new_subobject :
  t -> parent:Surrogate.t -> subclass:string -> ?attrs:(string * Value.t) list ->
  unit -> (Surrogate.t, Errors.t) result

val new_relationship :
  t -> ty:string -> participants:(string * Value.t) list ->
  ?attrs:(string * Value.t) list -> unit -> (Surrogate.t, Errors.t) result

val new_subrel :
  t -> parent:Surrogate.t -> subrel:string ->
  participants:(string * Value.t) list -> ?attrs:(string * Value.t) list ->
  unit -> (Surrogate.t, Errors.t) result

val set_attr : t -> Surrogate.t -> string -> Value.t -> (unit, Errors.t) result

val bind :
  t -> via:string -> transmitter:Surrogate.t -> inheritor:Surrogate.t -> unit ->
  (Surrogate.t, Errors.t) result

val unbind : t -> Surrogate.t -> (unit, Errors.t) result
val delete : t -> ?force:bool -> Surrogate.t -> (unit, Errors.t) result

(** {1 Maintenance} *)

val checkpoint : t -> (unit, Errors.t) result
(** Write a fresh snapshot and truncate the WAL. *)

val wal_size_bytes : t -> int
val close : t -> unit
