lib/storage/wal.mli: Compo_core Database Domain Errors Out_channel Surrogate Value
