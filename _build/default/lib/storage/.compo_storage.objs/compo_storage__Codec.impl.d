lib/storage/codec.ml: Array Binary Compo_core Domain Errors Expr List Printf Result Schema Store String Surrogate Value
