lib/storage/journal.mli: Compo_core Database Domain Errors Schema Surrogate Value
