lib/storage/wal.ml: Codec Compo_core Database Domain Errors In_channel Int32 Int64 List Out_channel Printf Result Schema String Surrogate Value
