lib/storage/snapshot.ml: Codec Compo_core Database Errors In_channel Int32 Out_channel Result String Sys
