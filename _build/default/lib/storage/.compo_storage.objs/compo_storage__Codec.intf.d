lib/storage/codec.mli: Compo_core Domain Errors Expr Schema Store Value
