lib/storage/journal.ml: Codec Compo_core Database Errors Filename List Logs Out_channel Result Schema Snapshot Sys Unix Wal
