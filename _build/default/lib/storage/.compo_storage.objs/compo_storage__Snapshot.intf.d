lib/storage/snapshot.mli: Compo_core Database Errors
