(** Write-ahead log of logical database operations.

    Each record is framed as [length; crc32; payload]; {!read_file}
    tolerates a torn tail (a crash mid-append) by stopping at the first
    incomplete or corrupt frame and reporting how many clean records it
    read.

    Replay is deterministic: the surrogate generator is sequential, so
    re-applying the records to the same starting snapshot reproduces the
    same surrogates; every creating record carries the surrogate it
    expects and {!apply} verifies it. *)

open Compo_core

type record =
  | Define_domain of { name : string; domain : Domain.t }
  | Define of string  (** codec-encoded schema entry *)
  | Create_class of { name : string; member_type : string }
  | Create_object of {
      cls : string option;
      ty : string;
      attrs : (string * Value.t) list;
      expect : Surrogate.t;
    }
  | Create_subobject of {
      parent : Surrogate.t;
      subclass : string;
      attrs : (string * Value.t) list;
      expect : Surrogate.t;
    }
  | Create_relationship of {
      ty : string;
      participants : (string * Value.t) list;
      attrs : (string * Value.t) list;
      expect : Surrogate.t;
    }
  | Create_subrel of {
      parent : Surrogate.t;
      subrel : string;
      participants : (string * Value.t) list;
      attrs : (string * Value.t) list;
      expect : Surrogate.t;
    }
  | Set_attr of { target : Surrogate.t; name : string; value : Value.t }
  | Bind of {
      via : string;
      transmitter : Surrogate.t;
      inheritor : Surrogate.t;
      expect : Surrogate.t;
    }
  | Unbind of { inheritor : Surrogate.t }
  | Delete of { target : Surrogate.t; force : bool }

val encode_record : record -> string
val decode_record : string -> (record, Errors.t) result

val append : Out_channel.t -> record -> unit
(** Frame and write one record, then flush. *)

val read_file : string -> record list * bool
(** All clean records of a WAL file; the flag is [false] when a torn or
    corrupt tail was skipped.  A missing file reads as ([], true). *)

val apply : Database.t -> record -> (unit, Errors.t) result
(** Re-execute one record against the database; creating records verify
    the surrogate they produce. *)
