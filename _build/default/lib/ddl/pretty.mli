(** Printing a registered schema back to the definition language.

    [Parser.parse |> Elaborate.install] of the output reproduces the same
    schema (round-trip property, tested in [test_ddl.ml]).  Inline subclass
    member types (registered under ["owner.subclass"]) are printed inline
    within their owner, as in the paper's listings. *)

val domain_to_string : Compo_core.Domain.t -> string
val expr_to_string : Compo_core.Expr.t -> string
val schema_to_string : Compo_core.Schema.t -> string
