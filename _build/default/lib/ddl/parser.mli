(** Recursive-descent parser for the schema definition language.

    Accepts the paper's listings modulo the lexical adaptations documented
    in DESIGN.md (identifiers may not contain "/", binary minus needs
    whitespace) plus two small extensions: subrelationship declarations may
    name their where-clause binder explicitly ([Wires: WireType as Wire
    where ...]; the binder defaults to the subclass name), and constraints
    may carry labels ([label: expr]). *)

val parse : string -> (Ast.schema_text, Compo_core.Errors.t) result

val parse_expr : string -> (Ast.expr, Compo_core.Errors.t) result
(** Parse a single constraint expression (used by the CLI and tests). *)
