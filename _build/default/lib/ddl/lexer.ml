open Compo_core

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error st message =
  Error (Errors.Parse_error { line = st.line; col = st.col; message })

let is_word_start c = ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || c = '_'

let is_word_char c =
  is_word_start c || ('0' <= c && c <= '9') || c = '-' || c = '\''

let is_digit c = '0' <= c && c <= '9'

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec skip depth =
        match (peek st, peek2 st) with
        | None, _ -> error st "unterminated comment"
        | Some '*', Some '/' ->
            advance st;
            advance st;
            if depth = 0 then Ok () else skip (depth - 1)
        | Some '/', Some '*' ->
            advance st;
            advance st;
            skip (depth + 1)
        | Some _, _ ->
            advance st;
            skip depth
      in
      Result.bind (skip 0) (fun () -> skip_ws_and_comments st)
  | Some '-' when peek2 st = Some '-' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_ws_and_comments st
  | Some _ | None -> Ok ()

let lex_word st =
  let start = st.pos in
  while (match peek st with Some c -> is_word_char c | None -> false) do
    advance st
  done;
  (* a trailing hyphen belongs to the next token (e.g. "x -3") *)
  let stop = ref st.pos in
  while !stop > start && st.src.[!stop - 1] = '-' do
    decr stop;
    st.pos <- st.pos - 1;
    st.col <- st.col - 1
  done;
  String.sub st.src start (!stop - start)

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_real =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if is_real then begin
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    Token.Real (float_of_string (String.sub st.src start (st.pos - start)))
  end
  else Token.Int (int_of_string (String.sub st.src start (st.pos - start)))

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' ->
        advance st;
        Ok (Token.Str (Buffer.contents buf))
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            go ()
        | Some c ->
            Buffer.add_char buf c;
            advance st;
            go ()
        | None -> error st "unterminated escape")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ()

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let ( let* ) = Result.bind in
  let rec go acc =
    let* () = skip_ws_and_comments st in
    let line = st.line and col = st.col in
    let tok kind = { Token.kind; line; col } in
    match peek st with
    | None -> Ok (List.rev (tok Token.Eof :: acc))
    | Some c when is_word_start c ->
        let word = lex_word st in
        let kind =
          if List.mem word Token.keywords then Token.Kw word else Token.Ident word
        in
        go (tok kind :: acc)
    | Some c when is_digit c -> go (tok (lex_number st) :: acc)
    | Some '"' ->
        let* s = lex_string st in
        go (tok s :: acc)
    | Some '<' when peek2 st = Some '>' ->
        advance st;
        advance st;
        go (tok Token.Ne :: acc)
    | Some '<' when peek2 st = Some '=' ->
        advance st;
        advance st;
        go (tok Token.Le :: acc)
    | Some '>' when peek2 st = Some '=' ->
        advance st;
        advance st;
        go (tok Token.Ge :: acc)
    | Some c ->
        let simple kind =
          advance st;
          go (tok kind :: acc)
        in
        (match c with
        | '(' -> simple Token.Lparen
        | ')' -> simple Token.Rparen
        | ':' -> simple Token.Colon
        | ';' -> simple Token.Semi
        | ',' -> simple Token.Comma
        | '.' -> simple Token.Dot
        | '=' -> simple Token.Eq
        | '<' -> simple Token.Lt
        | '>' -> simple Token.Gt
        | '+' -> simple Token.Plus
        | '-' -> simple Token.Minus
        | '*' -> simple Token.Star
        | '/' -> simple Token.Slash
        | '#' -> simple Token.Hash
        | c -> error st (Printf.sprintf "unexpected character %C" c))
  in
  go []
