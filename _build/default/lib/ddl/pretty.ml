open Compo_core

let rec domain_to_string (d : Domain.t) =
  match d with
  | Domain.Integer -> "integer"
  | Domain.Real -> "real"
  | Domain.Boolean -> "boolean"
  | Domain.String -> "string"
  | Domain.Enum cases -> "(" ^ String.concat ", " cases ^ ")"
  | Domain.Record fields ->
      let field (n, fd) = n ^ ": " ^ domain_to_string fd ^ ";" in
      "record (" ^ String.concat " " (List.map field fields) ^ ")"
  | Domain.List_of d -> "list-of " ^ domain_to_string d
  | Domain.Set_of d -> "set-of " ^ domain_to_string d
  | Domain.Matrix_of d -> "matrix-of " ^ domain_to_string d
  | Domain.Tuple ds ->
      (* tuples have no concrete syntax in the paper; print as a record *)
      let field i fd = "f" ^ string_of_int i ^ ": " ^ domain_to_string fd ^ ";" in
      "record (" ^ String.concat " " (List.mapi field ds) ^ ")"
  | Domain.Ref None -> "object"
  | Domain.Ref (Some ty) -> "object-of-type " ^ ty
  | Domain.Named n -> n

(* Precedence-aware expression printer; inline filtered counts are
   parenthesised so that the parser's greedy inline-where reads them back. *)
let expr_to_string e =
  let buf = Buffer.create 64 in
  let value_to_string = function
    | Value.Int i -> string_of_int i
    | Value.Real f -> string_of_float f
    | Value.Bool true -> "true"
    | Value.Bool false -> "false"
    | Value.Str s -> Printf.sprintf "%S" s
    | Value.Enum_case c -> c
    | v -> Value.to_string v
  in
  let prec_of = function
    | Expr.Or -> 1
    | Expr.And -> 2
    | Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.In -> 4
    | Expr.Add | Expr.Sub -> 5
    | Expr.Mul | Expr.Div -> 6
  in
  let op_name = function
    | Expr.Or -> "or"
    | Expr.And -> "and"
    | Expr.Eq -> "="
    | Expr.Ne -> "<>"
    | Expr.Lt -> "<"
    | Expr.Le -> "<="
    | Expr.Gt -> ">"
    | Expr.Ge -> ">="
    | Expr.In -> "in"
    | Expr.Add -> "+"
    | Expr.Sub -> "-"
    | Expr.Mul -> "*"
    | Expr.Div -> "/"
  in
  let binders_to_string bs =
    let binder (v, p) = v ^ " in " ^ String.concat "." p in
    match bs with
    | [ b ] -> binder b
    | bs -> "(" ^ String.concat ", " (List.map binder bs) ^ ")"
  in
  let rec go ctx e =
    match e with
    | Expr.Const v -> Buffer.add_string buf (value_to_string v)
    | Expr.Path p -> Buffer.add_string buf (String.concat "." p)
    | Expr.Count (p, None) ->
        Buffer.add_string buf ("count (" ^ String.concat "." p ^ ")")
    | Expr.Count (p, Some filter) ->
        Buffer.add_string buf ("(count (" ^ String.concat "." p ^ ") where ");
        go 0 filter;
        Buffer.add_char buf ')'
    | Expr.Sum p -> Buffer.add_string buf ("sum (" ^ String.concat "." p ^ ")")
    | Expr.Unop (Expr.Not, e) ->
        (* "not" binds tighter than comparisons in the parser, so always
           parenthesise the operand *)
        Buffer.add_string buf "not (";
        go 0 e;
        Buffer.add_char buf ')'
    | Expr.Unop (Expr.Neg, e) ->
        Buffer.add_string buf "-";
        paren 7 e
    | Expr.Binop (op, a, b) ->
        let p = prec_of op in
        let wrap = p < ctx in
        (* comparisons are non-associative in the grammar, so both operands
           of a comparison must bind tighter than the comparison itself *)
        let lhs_ctx = match op with
          | Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.In ->
              p + 1
          | Expr.Or | Expr.And | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div -> p
        in
        if wrap then Buffer.add_char buf '(';
        paren lhs_ctx a;
        Buffer.add_string buf (" " ^ op_name op ^ " ");
        paren (p + 1) b;
        if wrap then Buffer.add_char buf ')'
    | Expr.Forall (bs, body) ->
        let wrap = ctx > 0 in
        if wrap then Buffer.add_char buf '(';
        Buffer.add_string buf ("for " ^ binders_to_string bs ^ ": ");
        go 0 body;
        if wrap then Buffer.add_char buf ')'
    | Expr.Exists (bs, body) ->
        let wrap = ctx > 0 in
        if wrap then Buffer.add_char buf '(';
        Buffer.add_string buf ("exists " ^ binders_to_string bs ^ ": ");
        go 0 body;
        if wrap then Buffer.add_char buf ')'
  and paren ctx e =
    match e with
    | Expr.Binop (op, _, _) when prec_of op < ctx ->
        Buffer.add_char buf '(';
        go 0 e;
        Buffer.add_char buf ')'
    | _ -> go ctx e
  in
  go 0 e;
  Buffer.contents buf

let add_attrs b indent attrs =
  if attrs <> [] then begin
    Buffer.add_string b (indent ^ "attributes:\n");
    List.iter
      (fun (a : Schema.attr_def) ->
        Buffer.add_string b
          (indent ^ "  " ^ a.attr_name ^ ": " ^ domain_to_string a.attr_domain ^ ";\n"))
      attrs
  end

let add_constraints b indent (cs : Schema.named_constraint list) =
  if cs <> [] then begin
    Buffer.add_string b (indent ^ "constraints:\n");
    List.iter
      (fun (c : Schema.named_constraint) ->
        Buffer.add_string b
          (indent ^ "  " ^ c.c_name ^ ": " ^ expr_to_string c.c_expr ^ ";\n"))
      cs
  end

let rec add_subclasses schema b indent (subs : Schema.subclass_def list) =
  if subs <> [] then begin
    Buffer.add_string b (indent ^ "types-of-subclasses:\n");
    List.iter
      (fun (sc : Schema.subclass_def) ->
        let member = Schema.subclass_member_type schema sc in
        if String.contains member '.' then begin
          (* inline member type: print its body nested *)
          Buffer.add_string b (indent ^ "  " ^ sc.sc_name ^ ":\n");
          match Schema.find_obj_type schema member with
          | Ok ot ->
              (match ot.Schema.ot_inheritor_in with
              | Some rel ->
                  Buffer.add_string b (indent ^ "    inheritor-in: " ^ rel ^ ";\n")
              | None -> ());
              add_attrs b (indent ^ "    ") ot.Schema.ot_attrs;
              add_subclasses schema b (indent ^ "    ") ot.Schema.ot_subclasses;
              add_constraints b (indent ^ "    ") ot.Schema.ot_constraints
          | Error _ -> ()
        end
        else
          Buffer.add_string b (indent ^ "  " ^ sc.sc_name ^ ": " ^ member ^ ";\n"))
      subs
  end

let add_subrels b indent (subs : Schema.subrel_def list) =
  if subs <> [] then begin
    Buffer.add_string b (indent ^ "types-of-subrels:\n");
    List.iter
      (fun (sr : Schema.subrel_def) ->
        Buffer.add_string b (indent ^ "  " ^ sr.sr_name ^ ": " ^ sr.sr_rel_type);
        (match sr.sr_binder with
        | Some v -> Buffer.add_string b (" as " ^ v)
        | None -> ());
        (match sr.sr_where with
        | Some e -> Buffer.add_string b ("\n" ^ indent ^ "    where " ^ expr_to_string e)
        | None -> ());
        Buffer.add_string b ";\n")
      subs
  end

let obj_type_to_buf schema b (o : Schema.obj_type) =
  Buffer.add_string b ("obj-type " ^ o.ot_name ^ " =\n");
  (match o.ot_inheritor_in with
  | Some rel -> Buffer.add_string b ("  inheritor-in: " ^ rel ^ ";\n")
  | None -> ());
  add_attrs b "  " o.ot_attrs;
  add_subclasses schema b "  " o.ot_subclasses;
  add_subrels b "  " o.ot_subrels;
  add_constraints b "  " o.ot_constraints;
  Buffer.add_string b ("end " ^ o.ot_name ^ ";\n\n")

let rel_type_to_buf schema b (r : Schema.rel_type) =
  Buffer.add_string b ("rel-type " ^ r.rt_name ^ " =\n");
  Buffer.add_string b "  relates:\n";
  List.iter
    (fun (p : Schema.participant) ->
      let card = match p.p_card with Schema.Many -> "set-of " | Schema.One -> "" in
      let ty =
        match p.p_type with
        | Some t -> "object-of-type " ^ t
        | None -> "object"
      in
      Buffer.add_string b ("    " ^ p.p_name ^ ": " ^ card ^ ty ^ ";\n"))
    r.rt_relates;
  add_attrs b "  " r.rt_attrs;
  add_subclasses schema b "  " r.rt_subclasses;
  add_constraints b "  " r.rt_constraints;
  Buffer.add_string b ("end " ^ r.rt_name ^ ";\n\n")

let inher_type_to_buf schema b (i : Schema.inher_rel_type) =
  Buffer.add_string b ("inher-rel-type " ^ i.it_name ^ " =\n");
  Buffer.add_string b ("  transmitter: object-of-type " ^ i.it_transmitter ^ ";\n");
  (match i.it_inheritor with
  | Some t -> Buffer.add_string b ("  inheritor: object-of-type " ^ t ^ ";\n")
  | None -> Buffer.add_string b "  inheritor: object;\n");
  Buffer.add_string b ("  inheriting: " ^ String.concat ", " i.it_inheriting ^ ";\n");
  add_attrs b "  " i.it_attrs;
  add_subclasses schema b "  " i.it_subclasses;
  add_constraints b "  " i.it_constraints;
  Buffer.add_string b ("end " ^ i.it_name ^ ";\n\n")

let schema_to_string schema =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, d) ->
      Buffer.add_string b ("domain " ^ name ^ " = " ^ domain_to_string d ^ ";\n"))
    (Schema.domains schema);
  Buffer.add_char b '\n';
  List.iter
    (fun entry ->
      match entry with
      | Schema.Obj_type o when String.contains o.Schema.ot_name '.' ->
          () (* inline type: printed within its owner *)
      | Schema.Obj_type o -> obj_type_to_buf schema b o
      | Schema.Rel_type r -> rel_type_to_buf schema b r
      | Schema.Inher_type i -> inher_type_to_buf schema b i)
    (Schema.entries schema);
  Buffer.contents b
