open Compo_core

type state = { toks : Token.t array; mutable cur : int }

let ( let* ) = Result.bind
let peek st = st.toks.(st.cur)
let peek_kind st = (peek st).Token.kind

let peek_kind2 st =
  if st.cur + 1 < Array.length st.toks then Some st.toks.(st.cur + 1).Token.kind
  else None

let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1
let save st = st.cur
let restore st pos = st.cur <- pos

let error st message =
  let t = peek st in
  Error (Errors.Parse_error { line = t.Token.line; col = t.Token.col; message })

let expect st kind =
  if peek_kind st = kind then begin
    advance st;
    Ok ()
  end
  else
    error st
      (Printf.sprintf "expected %s, found %s" (Token.kind_to_string kind)
         (Token.kind_to_string (peek_kind st)))

let expect_kw st kw = expect st (Token.Kw kw)

let ident st =
  match peek_kind st with
  | Token.Ident name ->
      advance st;
      Ok name
  | k -> error st (Printf.sprintf "expected an identifier, found %s" (Token.kind_to_string k))

let eat_semi st = if peek_kind st = Token.Semi then advance st

let ident_list st =
  let* first = ident st in
  let rec go acc =
    if peek_kind st = Token.Comma then begin
      advance st;
      let* next = ident st in
      go (next :: acc)
    end
    else Ok (List.rev acc)
  in
  go [ first ]

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let path st =
  let* first = ident st in
  let rec go acc =
    if peek_kind st = Token.Dot then begin
      advance st;
      let* next = ident st in
      go (next :: acc)
    end
    else Ok (List.rev acc)
  in
  go [ first ]

let rec expr st = or_expr st

and or_expr st =
  let* lhs = and_expr st in
  let rec go lhs =
    if peek_kind st = Token.Kw "or" then begin
      advance st;
      let* rhs = and_expr st in
      go (Expr.Binop (Expr.Or, lhs, rhs))
    end
    else Ok lhs
  in
  go lhs

and and_expr st =
  let* lhs = not_expr st in
  let rec go lhs =
    if peek_kind st = Token.Kw "and" then begin
      advance st;
      let* rhs = not_expr st in
      go (Expr.Binop (Expr.And, lhs, rhs))
    end
    else Ok lhs
  in
  go lhs

and not_expr st =
  if peek_kind st = Token.Kw "not" then begin
    advance st;
    let* e = not_expr st in
    Ok (Expr.Unop (Expr.Not, e))
  end
  else comparison st

and comparison st =
  let* lhs = additive st in
  let op =
    match peek_kind st with
    | Token.Eq -> Some Expr.Eq
    | Token.Ne -> Some Expr.Ne
    | Token.Lt -> Some Expr.Lt
    | Token.Le -> Some Expr.Le
    | Token.Gt -> Some Expr.Gt
    | Token.Ge -> Some Expr.Ge
    | Token.Kw "in" -> Some Expr.In
    | _ -> None
  in
  match op with
  | None -> Ok lhs
  | Some op ->
      advance st;
      let* rhs = additive st in
      Ok (Expr.Binop (op, lhs, rhs))

and additive st =
  let* lhs = multiplicative st in
  let rec go lhs =
    match peek_kind st with
    | Token.Plus ->
        advance st;
        let* rhs = multiplicative st in
        go (Expr.Binop (Expr.Add, lhs, rhs))
    | Token.Minus ->
        advance st;
        let* rhs = multiplicative st in
        go (Expr.Binop (Expr.Sub, lhs, rhs))
    | _ -> Ok lhs
  in
  go lhs

and multiplicative st =
  let* lhs = unary st in
  let rec go lhs =
    match peek_kind st with
    | Token.Star ->
        advance st;
        let* rhs = unary st in
        go (Expr.Binop (Expr.Mul, lhs, rhs))
    | Token.Slash ->
        advance st;
        let* rhs = unary st in
        go (Expr.Binop (Expr.Div, lhs, rhs))
    | _ -> Ok lhs
  in
  go lhs

and unary st =
  if peek_kind st = Token.Minus then begin
    advance st;
    let* e = unary st in
    Ok (Expr.Unop (Expr.Neg, e))
  end
  else primary st

and primary st =
  match peek_kind st with
  | Token.Int i ->
      advance st;
      Ok (Expr.Const (Value.Int i))
  | Token.Real f ->
      advance st;
      Ok (Expr.Const (Value.Real f))
  | Token.Str s ->
      advance st;
      Ok (Expr.Const (Value.Str s))
  | Token.Kw "true" ->
      advance st;
      Ok (Expr.Const (Value.Bool true))
  | Token.Kw "false" ->
      advance st;
      Ok (Expr.Const (Value.Bool false))
  | Token.Lparen ->
      advance st;
      let* e = expr st in
      let* () = expect st Token.Rparen in
      Ok e
  | Token.Kw "count" ->
      advance st;
      let* () = expect st Token.Lparen in
      let* p = path st in
      let* () = expect st Token.Rparen in
      (* greedy inline filter; the paper's trailing form ("count (Pins) = 2
         where ...") is attached at the constraint level instead *)
      if peek_kind st = Token.Kw "where" then begin
        advance st;
        let* filter = expr st in
        Ok (Expr.Count (p, Some filter))
      end
      else Ok (Expr.Count (p, None))
  | Token.Hash ->
      (* "#s in Bolt" counts the members of Bolt *)
      advance st;
      let* _binder = ident st in
      let* () = expect_kw st "in" in
      let* p = path st in
      Ok (Expr.Count (p, None))
  | Token.Kw "sum" ->
      advance st;
      let* () = expect st Token.Lparen in
      let* p = path st in
      let* () = expect st Token.Rparen in
      Ok (Expr.Sum p)
  | Token.Kw "for" ->
      advance st;
      let* binders = quantifier_binders st in
      let* () = expect st Token.Colon in
      let* body = expr st in
      Ok (Expr.Forall (binders, body))
  | Token.Kw "exists" ->
      advance st;
      let* binders = quantifier_binders st in
      let* () = expect st Token.Colon in
      let* body = expr st in
      Ok (Expr.Exists (binders, body))
  | Token.Ident _ ->
      let* p = path st in
      Ok (Expr.Path p)
  | k -> error st (Printf.sprintf "expected an expression, found %s" (Token.kind_to_string k))

and quantifier_binders st =
  let binder st =
    let* v = ident st in
    let* () = expect_kw st "in" in
    let* p = path st in
    Ok (v, p)
  in
  if peek_kind st = Token.Lparen then begin
    advance st;
    let* first = binder st in
    let rec go acc =
      if peek_kind st = Token.Comma then begin
        advance st;
        let* next = binder st in
        go (next :: acc)
      end
      else
        let* () = expect st Token.Rparen in
        Ok (List.rev acc)
    in
    go [ first ]
  end
  else
    let* only = binder st in
    Ok [ only ]

(* A constraint is an expression optionally followed by the paper's
   trailing "where": the filter attaches to the leftmost unfiltered count. *)
let attach_trailing_where e filter =
  let attached = ref false in
  let rec go e =
    match e with
    | Expr.Count (p, None) when not !attached ->
        attached := true;
        Expr.Count (p, Some filter)
    | Expr.Count _ | Expr.Const _ | Expr.Path _ | Expr.Sum _ -> e
    | Expr.Unop (op, a) -> Expr.Unop (op, go a)
    | Expr.Binop (op, a, b) ->
        let a' = go a in
        Expr.Binop (op, a', go b)
    | Expr.Forall (bs, body) -> Expr.Forall (bs, go body)
    | Expr.Exists (bs, body) -> Expr.Exists (bs, go body)
  in
  let result = go e in
  if !attached then Some result else None

let constraint_expr st =
  let* e = expr st in
  if peek_kind st = Token.Kw "where" then begin
    advance st;
    let* filter = expr st in
    match attach_trailing_where e filter with
    | Some e' -> Ok e'
    | None -> error st "trailing where-clause without a count to attach to"
  end
  else Ok e

(* ------------------------------------------------------------------ *)
(* Domains                                                             *)

let rec domain st =
  match peek_kind st with
  | Token.Kw "integer" ->
      advance st;
      Ok Ast.D_integer
  | Token.Kw "real" ->
      advance st;
      Ok Ast.D_real
  | Token.Kw "boolean" ->
      advance st;
      Ok Ast.D_boolean
  | Token.Kw "string" ->
      advance st;
      Ok Ast.D_string
  | Token.Kw "set-of" ->
      advance st;
      let* d = domain st in
      Ok (Ast.D_set d)
  | Token.Kw "list-of" ->
      advance st;
      let* d = domain st in
      Ok (Ast.D_list d)
  | Token.Kw "matrix-of" ->
      advance st;
      let* d = domain st in
      Ok (Ast.D_matrix d)
  | Token.Kw "object" ->
      advance st;
      Ok (Ast.D_object None)
  | Token.Kw "object-of-type" ->
      advance st;
      let* name = ident st in
      Ok (Ast.D_object (Some name))
  | Token.Kw "record" ->
      (* record: fields... end-domain [Name] -- or record (fields) *)
      advance st;
      if peek_kind st = Token.Colon then begin
        advance st;
        let* groups = field_groups st in
        let* () = expect_kw st "end-domain" in
        (match peek_kind st with Token.Ident _ -> advance st | _ -> ());
        Ok (Ast.D_record (List.map group_to_fields groups))
      end
      else
        let* () = expect st Token.Lparen in
        let* groups = field_groups st in
        let* () = expect st Token.Rparen in
        Ok (Ast.D_record (List.map group_to_fields groups))
  | Token.Lparen -> paren_domain st
  | Token.Ident name ->
      advance st;
      Ok (Ast.D_named name)
  | k -> error st (Printf.sprintf "expected a domain, found %s" (Token.kind_to_string k))

and group_to_fields g = (g.Ast.ag_names, g.Ast.ag_domain)

(* "(IN, OUT)" is an enumeration; "(X, Y: integer)" and
   "(PinId: integer; InOut: IO;)" are records. *)
and paren_domain st =
  let* () = expect st Token.Lparen in
  let* names = ident_list st in
  match peek_kind st with
  | Token.Rparen ->
      advance st;
      Ok (Ast.D_enum names)
  | Token.Colon ->
      advance st;
      let* d = domain st in
      let first = (names, d) in
      let* rest =
        if peek_kind st = Token.Semi then begin
          advance st;
          if peek_kind st = Token.Rparen then Ok []
          else
            let* groups = field_groups st in
            Ok (List.map group_to_fields groups)
        end
        else Ok []
      in
      let* () = expect st Token.Rparen in
      Ok (Ast.D_record (first :: rest))
  | k ->
      error st
        (Printf.sprintf "expected , : or ) in domain, found %s" (Token.kind_to_string k))

(* "Length, Width: integer; Function: (AND, OR);" -- stops (without
   consuming) at the first token that cannot start another field group. *)
and field_groups st =
  let field_group st =
    let pos = save st in
    match ident_list st with
    | Error _ as e ->
        restore st pos;
        e
    | Ok names ->
        if peek_kind st <> Token.Colon then begin
          restore st pos;
          error st "not a field group"
        end
        else begin
          advance st;
          match domain st with
          | Error _ as e ->
              restore st pos;
              e
          | Ok d ->
              eat_semi st;
              Ok { Ast.ag_names = names; ag_domain = d }
        end
  in
  let* first = field_group st in
  let rec go acc =
    let pos = save st in
    match field_group st with
    | Ok g -> go (g :: acc)
    | Error _ ->
        restore st pos;
        Ok (List.rev acc)
  in
  go [ first ]

(* ------------------------------------------------------------------ *)
(* Type bodies                                                         *)

let labeled_constraints st =
  let one st =
    let label =
      match (peek_kind st, peek_kind2 st) with
      | Token.Ident l, Some Token.Colon ->
          advance st;
          advance st;
          Some l
      | _ -> None
    in
    let* e = constraint_expr st in
    eat_semi st;
    Ok { Ast.lc_label = label; lc_expr = e }
  in
  let rec go acc =
    let pos = save st in
    match one st with
    | Ok c -> go (c :: acc)
    | Error _ ->
        restore st pos;
        Ok (List.rev acc)
  in
  go []

let rec subclass_decls st =
  let one st =
    let pos = save st in
    let* name = ident st in
    if peek_kind st <> Token.Colon then begin
      restore st pos;
      error st "not a subclass declaration"
    end
    else begin
      advance st;
      match peek_kind st with
      | Token.Ident member ->
          advance st;
          eat_semi st;
          Ok (Ast.Sc_named (name, member))
      | Token.Kw ("inheritor-in" | "attributes") ->
          let* body = inline_body st in
          Ok (Ast.Sc_inline (name, body))
      | k ->
          restore st pos;
          error st
            (Printf.sprintf "expected a member type or inline body, found %s"
               (Token.kind_to_string k))
    end
  in
  let rec go acc =
    let pos = save st in
    match one st with
    | Ok sc -> go (sc :: acc)
    | Error _ ->
        restore st pos;
        Ok (List.rev acc)
  in
  go []

and inline_body st =
  let body =
    ref
      {
        Ast.ib_inheritor_in = None;
        ib_attrs = [];
        ib_subclasses = [];
        ib_constraints = [];
      }
  in
  let rec go () =
    match peek_kind st with
    | Token.Kw "inheritor-in" ->
        advance st;
        let* () = expect st Token.Colon in
        let* rel = ident st in
        eat_semi st;
        body := { !body with Ast.ib_inheritor_in = Some rel };
        go ()
    | Token.Kw "attributes" ->
        advance st;
        let* () = expect st Token.Colon in
        let* groups = field_groups st in
        body := { !body with Ast.ib_attrs = !body.Ast.ib_attrs @ groups };
        go ()
    (* Inline member types support inheritor-in and attributes only; a
       following "constraints:" or "types-of-subclasses:" section belongs
       to the owner (the paper's listings never nest those inline). *)
    | _ -> Ok !body
  in
  go ()

let subrel_decls st =
  let one st =
    let pos = save st in
    let* name = ident st in
    if peek_kind st <> Token.Colon then begin
      restore st pos;
      error st "not a subrel declaration"
    end
    else begin
      advance st;
      let* rel_type = ident st in
      let* binder =
        if peek_kind st = Token.Kw "as" then begin
          advance st;
          let* b = ident st in
          Ok (Some b)
        end
        else Ok None
      in
      let* where_clause =
        if peek_kind st = Token.Kw "where" then begin
          advance st;
          let* e = expr st in
          Ok (Some e)
        end
        else Ok None
      in
      eat_semi st;
      Ok { Ast.sd_name = name; sd_type = rel_type; sd_binder = binder; sd_where = where_clause }
    end
  in
  let rec go acc =
    let pos = save st in
    match one st with
    | Ok sr -> go (sr :: acc)
    | Error _ ->
        restore st pos;
        Ok (List.rev acc)
  in
  go []

let finish_type st =
  let* () = expect_kw st "end" in
  (match peek_kind st with Token.Ident _ -> advance st | _ -> ());
  eat_semi st;
  Ok ()

let obj_decl st =
  let* () = expect_kw st "obj-type" in
  let* name = ident st in
  let* () = expect st Token.Eq in
  let decl =
    ref
      {
        Ast.od_name = name;
        od_inheritor_in = None;
        od_attrs = [];
        od_subclasses = [];
        od_subrels = [];
        od_constraints = [];
      }
  in
  let rec sections () =
    match peek_kind st with
    | Token.Kw "inheritor-in" ->
        advance st;
        let* () = expect st Token.Colon in
        let* rel = ident st in
        eat_semi st;
        decl := { !decl with Ast.od_inheritor_in = Some rel };
        sections ()
    | Token.Kw "attributes" ->
        advance st;
        let* () = expect st Token.Colon in
        let* groups = field_groups st in
        decl := { !decl with Ast.od_attrs = !decl.Ast.od_attrs @ groups };
        sections ()
    | Token.Kw "types-of-subclasses" ->
        advance st;
        let* () = expect st Token.Colon in
        let* subs = subclass_decls st in
        decl := { !decl with Ast.od_subclasses = !decl.Ast.od_subclasses @ subs };
        sections ()
    | Token.Kw "types-of-subrels" ->
        advance st;
        let* () = expect st Token.Colon in
        let* subs = subrel_decls st in
        decl := { !decl with Ast.od_subrels = !decl.Ast.od_subrels @ subs };
        sections ()
    | Token.Kw "constraints" ->
        advance st;
        let* () = expect st Token.Colon in
        let* cs = labeled_constraints st in
        decl := { !decl with Ast.od_constraints = !decl.Ast.od_constraints @ cs };
        sections ()
    | Token.Kw "end" ->
        let* () = finish_type st in
        Ok (Ast.D_obj !decl)
    | k ->
        error st
          (Printf.sprintf "unexpected %s in obj-type body" (Token.kind_to_string k))
  in
  sections ()

let participant_groups st =
  let one st =
    let pos = save st in
    let* names = ident_list st in
    if peek_kind st <> Token.Colon then begin
      restore st pos;
      error st "not a participant group"
    end
    else begin
      advance st;
      let* many =
        if peek_kind st = Token.Kw "set-of" then begin
          advance st;
          Ok true
        end
        else Ok false
      in
      let* ty =
        match peek_kind st with
        | Token.Kw "object" ->
            advance st;
            Ok None
        | Token.Kw "object-of-type" ->
            advance st;
            let* t = ident st in
            Ok (Some t)
        | k ->
            error st
              (Printf.sprintf "expected object or object-of-type, found %s"
                 (Token.kind_to_string k))
      in
      eat_semi st;
      Ok { Ast.pg_names = names; pg_many = many; pg_type = ty }
    end
  in
  let* first = one st in
  let rec go acc =
    let pos = save st in
    match one st with
    | Ok g -> go (g :: acc)
    | Error _ ->
        restore st pos;
        Ok (List.rev acc)
  in
  go [ first ]

let rel_decl st =
  let* () = expect_kw st "rel-type" in
  let* name = ident st in
  let* () = expect st Token.Eq in
  let* () = expect_kw st "relates" in
  let* () = expect st Token.Colon in
  let* relates = participant_groups st in
  let decl =
    ref
      {
        Ast.rd_name = name;
        rd_relates = relates;
        rd_attrs = [];
        rd_subclasses = [];
        rd_constraints = [];
      }
  in
  let rec sections () =
    match peek_kind st with
    | Token.Kw "attributes" ->
        advance st;
        let* () = expect st Token.Colon in
        let* groups = field_groups st in
        decl := { !decl with Ast.rd_attrs = !decl.Ast.rd_attrs @ groups };
        sections ()
    | Token.Kw "types-of-subclasses" ->
        advance st;
        let* () = expect st Token.Colon in
        let* subs = subclass_decls st in
        decl := { !decl with Ast.rd_subclasses = !decl.Ast.rd_subclasses @ subs };
        sections ()
    | Token.Kw "constraints" ->
        advance st;
        let* () = expect st Token.Colon in
        let* cs = labeled_constraints st in
        decl := { !decl with Ast.rd_constraints = !decl.Ast.rd_constraints @ cs };
        sections ()
    | Token.Kw "end" ->
        let* () = finish_type st in
        Ok (Ast.D_rel !decl)
    | k ->
        error st
          (Printf.sprintf "unexpected %s in rel-type body" (Token.kind_to_string k))
  in
  sections ()

let inher_decl st =
  let* () = expect_kw st "inher-rel-type" in
  let* name = ident st in
  let* () = expect st Token.Eq in
  let* () = expect_kw st "transmitter" in
  let* () = expect st Token.Colon in
  let* () = expect_kw st "object-of-type" in
  let* transmitter = ident st in
  eat_semi st;
  let* () = expect_kw st "inheritor" in
  let* () = expect st Token.Colon in
  let* inheritor =
    match peek_kind st with
    | Token.Kw "object" ->
        advance st;
        Ok None
    | Token.Kw "object-of-type" ->
        advance st;
        let* t = ident st in
        Ok (Some t)
    | k ->
        error st
          (Printf.sprintf "expected object or object-of-type, found %s"
             (Token.kind_to_string k))
  in
  eat_semi st;
  let* () = expect_kw st "inheriting" in
  let* () = expect st Token.Colon in
  let* inheriting = ident_list st in
  eat_semi st;
  let decl =
    ref
      {
        Ast.id_name = name;
        id_transmitter = transmitter;
        id_inheritor = inheritor;
        id_inheriting = inheriting;
        id_attrs = [];
        id_subclasses = [];
        id_constraints = [];
      }
  in
  let rec sections () =
    match peek_kind st with
    | Token.Kw "attributes" ->
        advance st;
        let* () = expect st Token.Colon in
        let* groups = field_groups st in
        decl := { !decl with Ast.id_attrs = !decl.Ast.id_attrs @ groups };
        sections ()
    | Token.Kw "types-of-subclasses" ->
        advance st;
        let* () = expect st Token.Colon in
        let* subs = subclass_decls st in
        decl := { !decl with Ast.id_subclasses = !decl.Ast.id_subclasses @ subs };
        sections ()
    | Token.Kw "constraints" ->
        advance st;
        let* () = expect st Token.Colon in
        let* cs = labeled_constraints st in
        decl := { !decl with Ast.id_constraints = !decl.Ast.id_constraints @ cs };
        sections ()
    | Token.Kw "end" ->
        let* () = finish_type st in
        Ok (Ast.D_inher !decl)
    | k ->
        error st
          (Printf.sprintf "unexpected %s in inher-rel-type body"
             (Token.kind_to_string k))
  in
  sections ()

let domain_decl st =
  let* () = expect_kw st "domain" in
  let* name = ident st in
  let* () = expect st Token.Eq in
  let* d = domain st in
  eat_semi st;
  Ok (Ast.D_domain (name, d))

let parse_tokens toks =
  let st = { toks = Array.of_list toks; cur = 0 } in
  let rec go acc =
    match peek_kind st with
    | Token.Eof -> Ok (List.rev acc)
    | Token.Kw "domain" ->
        let* d = domain_decl st in
        go (d :: acc)
    | Token.Kw "obj-type" ->
        let* d = obj_decl st in
        go (d :: acc)
    | Token.Kw "rel-type" ->
        let* d = rel_decl st in
        go (d :: acc)
    | Token.Kw "inher-rel-type" ->
        let* d = inher_decl st in
        go (d :: acc)
    | k ->
        error st
          (Printf.sprintf "expected a declaration, found %s" (Token.kind_to_string k))
  in
  go []

let parse src =
  let* toks = Lexer.tokenize src in
  parse_tokens toks

let parse_expr src =
  let* toks = Lexer.tokenize src in
  let st = { toks = Array.of_list toks; cur = 0 } in
  let* e = constraint_expr st in
  match peek_kind st with
  | Token.Eof | Token.Semi -> Ok e
  | k ->
      error st (Printf.sprintf "trailing input after expression: %s" (Token.kind_to_string k))
