(** Hand-written lexer for the schema definition language.

    Supports [/* ... */] block comments (nesting) and [--] line comments.
    Words may contain hyphens, so binary minus requires whitespace. *)

val tokenize : string -> (Token.t list, Compo_core.Errors.t) result
