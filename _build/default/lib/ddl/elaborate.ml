open Compo_core

let ( let* ) = Result.bind

module Sset = Set.Make (String)

type ctx = { db : Database.t; mutable enum_cases : Sset.t }

let rec collect_enum_cases ctx (d : Ast.domain_expr) =
  match d with
  | Ast.D_enum cases ->
      ctx.enum_cases <- Sset.union ctx.enum_cases (Sset.of_list cases)
  | Ast.D_record fields ->
      List.iter (fun (_, fd) -> collect_enum_cases ctx fd) fields
  | Ast.D_set d | Ast.D_list d | Ast.D_matrix d -> collect_enum_cases ctx d
  | Ast.D_integer | Ast.D_real | Ast.D_boolean | Ast.D_string | Ast.D_named _
  | Ast.D_object _ ->
      ()

let rec domain_of_ast (d : Ast.domain_expr) : Domain.t =
  match d with
  | Ast.D_integer -> Domain.Integer
  | Ast.D_real -> Domain.Real
  | Ast.D_boolean -> Domain.Boolean
  | Ast.D_string -> Domain.String
  | Ast.D_enum cases -> Domain.Enum cases
  | Ast.D_record groups ->
      Domain.Record
        (List.concat_map
           (fun (names, fd) ->
             let fd' = domain_of_ast fd in
             List.map (fun n -> (n, fd')) names)
           groups)
  | Ast.D_set d -> Domain.Set_of (domain_of_ast d)
  | Ast.D_list d -> Domain.List_of (domain_of_ast d)
  | Ast.D_matrix d -> Domain.Matrix_of (domain_of_ast d)
  | Ast.D_named n -> Domain.Named n
  | Ast.D_object ty -> Domain.Ref ty

let attrs_of_groups groups =
  List.concat_map
    (fun g ->
      let d = domain_of_ast g.Ast.ag_domain in
      List.map (fun n -> { Schema.attr_name = n; attr_domain = d }) g.Ast.ag_names)
    groups

(* Enum-literal resolution: rewrite single-segment paths that can only be
   enumeration constants. *)
let resolve_enum_literals ctx ~features expr =
  let rec go vars expr =
    match expr with
    | Expr.Path [ x ]
      when (not (Sset.mem x vars))
           && (not (Sset.mem x features))
           && Sset.mem x ctx.enum_cases ->
        Expr.Const (Value.Enum_case x)
    | Expr.Path _ | Expr.Const _ -> expr
    | Expr.Count (p, filter) ->
        let binder = List.nth p (List.length p - 1) in
        Expr.Count (p, Option.map (go (Sset.add binder vars)) filter)
    | Expr.Sum _ -> expr
    | Expr.Unop (op, e) -> Expr.Unop (op, go vars e)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, go vars a, go vars b)
    | Expr.Forall (bs, body) ->
        let vars' = List.fold_left (fun acc (v, _) -> Sset.add v acc) vars bs in
        Expr.Forall (bs, go vars' body)
    | Expr.Exists (bs, body) ->
        let vars' = List.fold_left (fun acc (v, _) -> Sset.add v acc) vars bs in
        Expr.Exists (bs, go vars' body)
  in
  go Sset.empty expr

let constraints_of ctx ~features labeled =
  List.mapi
    (fun i lc ->
      let name =
        match lc.Ast.lc_label with Some l -> l | None -> "c" ^ string_of_int (i + 1)
      in
      {
        Schema.c_name = name;
        c_expr = resolve_enum_literals ctx ~features lc.Ast.lc_expr;
      })
    labeled

let rec subclass_of_ast ctx = function
  | Ast.Sc_named (name, member) ->
      { Schema.sc_name = name; sc_member = Schema.Named_type member }
  | Ast.Sc_inline (name, body) ->
      let features = inline_features body in
      {
        Schema.sc_name = name;
        sc_member =
          Schema.Inline
            {
              Schema.ot_name = "";
              ot_inheritor_in = body.Ast.ib_inheritor_in;
              ot_attrs = attrs_of_groups body.Ast.ib_attrs;
              ot_subclasses = List.map (subclass_of_ast ctx) body.Ast.ib_subclasses;
              ot_subrels = [];
              ot_constraints = constraints_of ctx ~features body.Ast.ib_constraints;
            };
      }

and inline_features body =
  Sset.of_list
    (List.concat_map (fun g -> g.Ast.ag_names) body.Ast.ib_attrs
    @ List.map
        (function Ast.Sc_named (n, _) | Ast.Sc_inline (n, _) -> n)
        body.Ast.ib_subclasses)

let subrel_of_ast ctx ~features sr =
  {
    Schema.sr_name = sr.Ast.sd_name;
    sr_rel_type = sr.Ast.sd_type;
    sr_binder = sr.Ast.sd_binder;
    sr_where =
      Option.map
        (resolve_enum_literals ctx
           ~features:
             (Sset.add
                (Option.value ~default:sr.Ast.sd_name sr.Ast.sd_binder)
                features))
        sr.Ast.sd_where;
  }

let feature_names ~attrs ~subclasses ~subrels ~participants =
  Sset.of_list
    (List.concat_map (fun (g : Ast.attr_group) -> g.ag_names) attrs
    @ List.map
        (function Ast.Sc_named (n, _) | Ast.Sc_inline (n, _) -> n)
        subclasses
    @ List.map (fun (sr : Ast.subrel_decl) -> sr.sd_name) subrels
    @ List.concat_map (fun (pg : Ast.participant_group) -> pg.pg_names) participants)

(* Register enum cases appearing anywhere in a declaration before
   translating its constraints. *)
let collect_decl_enums ctx = function
  | Ast.D_domain (_, d) -> collect_enum_cases ctx d
  | Ast.D_obj o -> List.iter (fun g -> collect_enum_cases ctx g.Ast.ag_domain) o.Ast.od_attrs
  | Ast.D_rel r -> List.iter (fun g -> collect_enum_cases ctx g.Ast.ag_domain) r.Ast.rd_attrs
  | Ast.D_inher i -> List.iter (fun g -> collect_enum_cases ctx g.Ast.ag_domain) i.Ast.id_attrs

let install_decl ctx = function
  | Ast.D_domain (name, d) ->
      Database.define_domain ctx.db name (domain_of_ast d)
  | Ast.D_obj o ->
      let features =
        feature_names ~attrs:o.Ast.od_attrs ~subclasses:o.Ast.od_subclasses
          ~subrels:o.Ast.od_subrels ~participants:[]
      in
      Database.define_obj_type ctx.db
        {
          Schema.ot_name = o.Ast.od_name;
          ot_inheritor_in = o.Ast.od_inheritor_in;
          ot_attrs = attrs_of_groups o.Ast.od_attrs;
          ot_subclasses = List.map (subclass_of_ast ctx) o.Ast.od_subclasses;
          ot_subrels = List.map (subrel_of_ast ctx ~features) o.Ast.od_subrels;
          ot_constraints = constraints_of ctx ~features o.Ast.od_constraints;
        }
  | Ast.D_rel r ->
      let features =
        feature_names ~attrs:r.Ast.rd_attrs ~subclasses:r.Ast.rd_subclasses
          ~subrels:[] ~participants:r.Ast.rd_relates
      in
      Database.define_rel_type ctx.db
        {
          Schema.rt_name = r.Ast.rd_name;
          rt_relates =
            List.concat_map
              (fun pg ->
                List.map
                  (fun n ->
                    {
                      Schema.p_name = n;
                      p_card = (if pg.Ast.pg_many then Schema.Many else Schema.One);
                      p_type = pg.Ast.pg_type;
                    })
                  pg.Ast.pg_names)
              r.Ast.rd_relates;
          rt_attrs = attrs_of_groups r.Ast.rd_attrs;
          rt_subclasses = List.map (subclass_of_ast ctx) r.Ast.rd_subclasses;
          rt_constraints = constraints_of ctx ~features r.Ast.rd_constraints;
        }
  | Ast.D_inher i ->
      let features =
        feature_names ~attrs:i.Ast.id_attrs ~subclasses:i.Ast.id_subclasses
          ~subrels:[] ~participants:[]
      in
      Database.define_inher_rel_type ctx.db
        {
          Schema.it_name = i.Ast.id_name;
          it_transmitter = i.Ast.id_transmitter;
          it_inheritor = i.Ast.id_inheritor;
          it_inheriting = i.Ast.id_inheriting;
          it_attrs = attrs_of_groups i.Ast.id_attrs;
          it_subclasses = List.map (subclass_of_ast ctx) i.Ast.id_subclasses;
          it_constraints = constraints_of ctx ~features i.Ast.id_constraints;
        }

let install db decls =
  let ctx = { db; enum_cases = Sset.empty } in
  (* seed with the enum cases of previously-registered named domains, so a
     schema can be loaded in several pieces *)
  List.iter
    (fun (_, d) ->
      let rec collect = function
        | Domain.Enum cases ->
            ctx.enum_cases <- Sset.union ctx.enum_cases (Sset.of_list cases)
        | Domain.Record fields -> List.iter (fun (_, fd) -> collect fd) fields
        | Domain.List_of d | Domain.Set_of d | Domain.Matrix_of d -> collect d
        | Domain.Tuple ds -> List.iter collect ds
        | Domain.Integer | Domain.Real | Domain.Boolean | Domain.String
        | Domain.Ref _ | Domain.Named _ ->
            ()
      in
      collect d)
    (Schema.domains (Database.schema db));
  List.fold_left
    (fun acc decl ->
      let* () = acc in
      collect_decl_enums ctx decl;
      install_decl ctx decl)
    (Ok ()) decls

let load_string db src =
  let* decls = Parser.parse src in
  install db decls

let load_file db path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> load_string db src
  | exception Sys_error msg -> Error (Errors.Io_error msg)
