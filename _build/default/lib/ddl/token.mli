(** Tokens of the schema definition language.

    The notation follows the paper's listings: hyphenated keywords
    ([obj-type], [inher-rel-type], [types-of-subclasses], ...), [/* ... */]
    comments, and constraint expressions with [count]/[sum]/[for].

    Lexical note: a word starting with a letter may contain hyphens
    ([Flip-Flop] is one identifier); binary minus therefore needs
    surrounding whitespace ([a - b]). *)

type kind =
  | Ident of string
  | Int of int
  | Real of float
  | Str of string
  | Kw of string  (** classified keyword, e.g. ["obj-type"] *)
  | Lparen
  | Rparen
  | Colon
  | Semi
  | Comma
  | Dot
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Plus
  | Minus
  | Star
  | Slash
  | Hash
  | Eof

type t = { kind : kind; line : int; col : int }

val keywords : string list
val pp_kind : Format.formatter -> kind -> unit
val kind_to_string : kind -> string
