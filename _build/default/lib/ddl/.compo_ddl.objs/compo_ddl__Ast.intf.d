lib/ddl/ast.mli: Compo_core
