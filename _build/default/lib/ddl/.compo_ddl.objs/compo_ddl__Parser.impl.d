lib/ddl/parser.ml: Array Ast Compo_core Errors Expr Lexer List Printf Result Token Value
