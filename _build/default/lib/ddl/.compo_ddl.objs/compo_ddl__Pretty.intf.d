lib/ddl/pretty.mli: Compo_core
