lib/ddl/token.ml: Format Printf
