lib/ddl/pretty.ml: Buffer Compo_core Domain Expr List Printf Schema String Value
