lib/ddl/elaborate.mli: Ast Compo_core
