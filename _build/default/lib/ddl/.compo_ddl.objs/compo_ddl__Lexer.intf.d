lib/ddl/lexer.mli: Compo_core Token
