lib/ddl/elaborate.ml: Ast Compo_core Database Domain Errors Expr In_channel List Option Parser Result Schema Set String Value
