lib/ddl/parser.mli: Ast Compo_core
