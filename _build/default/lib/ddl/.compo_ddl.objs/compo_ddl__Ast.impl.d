lib/ddl/ast.ml: Compo_core
