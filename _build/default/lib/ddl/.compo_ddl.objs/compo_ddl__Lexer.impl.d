lib/ddl/lexer.ml: Buffer Compo_core Errors List Printf Result String Token
