lib/ddl/token.mli: Format
