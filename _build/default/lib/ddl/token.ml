type kind =
  | Ident of string
  | Int of int
  | Real of float
  | Str of string
  | Kw of string
  | Lparen
  | Rparen
  | Colon
  | Semi
  | Comma
  | Dot
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Plus
  | Minus
  | Star
  | Slash
  | Hash
  | Eof

type t = { kind : kind; line : int; col : int }

let keywords =
  [
    "domain";
    "obj-type";
    "rel-type";
    "inher-rel-type";
    "end";
    "end-domain";
    "attributes";
    "constraints";
    "types-of-subclasses";
    "types-of-subrels";
    "relates";
    "transmitter";
    "inheritor";
    "inheritor-in";
    "inheriting";
    "object";
    "object-of-type";
    "set-of";
    "list-of";
    "matrix-of";
    "record";
    "integer";
    "real";
    "boolean";
    "string";
    "where";
    "count";
    "sum";
    "for";
    "exists";
    "in";
    "and";
    "or";
    "not";
    "as";
    "true";
    "false";
  ]

let kind_to_string = function
  | Ident s -> Printf.sprintf "identifier %s" s
  | Int i -> string_of_int i
  | Real f -> string_of_float f
  | Str s -> Printf.sprintf "%S" s
  | Kw k -> Printf.sprintf "keyword %s" k
  | Lparen -> "("
  | Rparen -> ")"
  | Colon -> ":"
  | Semi -> ";"
  | Comma -> ","
  | Dot -> "."
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Hash -> "#"
  | Eof -> "end of input"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)
