(** Abstract syntax of the schema definition language, prior to name
    resolution.  Produced by {!Parser}, consumed by {!Elaborate}. *)

type domain_expr =
  | D_integer
  | D_real
  | D_boolean
  | D_string
  | D_enum of string list
  | D_record of (string list * domain_expr) list
      (** field groups: [(X, Y: integer)] keeps [X, Y] grouped *)
  | D_set of domain_expr
  | D_list of domain_expr
  | D_matrix of domain_expr
  | D_named of string
  | D_object of string option  (** [object] / [object-of-type T] *)

type expr = Compo_core.Expr.t
(** Constraint expressions reuse the core AST; enum-literal resolution
    (rewriting single-segment paths like [IN] into enum constants) happens
    during elaboration. *)

type attr_group = { ag_names : string list; ag_domain : domain_expr }
type labeled_constraint = { lc_label : string option; lc_expr : expr }

type subclass_decl =
  | Sc_named of string * string  (** subclass name, member type name *)
  | Sc_inline of string * inline_body

and inline_body = {
  ib_inheritor_in : string option;
  ib_attrs : attr_group list;
  ib_subclasses : subclass_decl list;
  ib_constraints : labeled_constraint list;
}

type subrel_decl = {
  sd_name : string;
  sd_type : string;
  sd_binder : string option;  (** [as w] *)
  sd_where : expr option;
}

type obj_decl = {
  od_name : string;
  od_inheritor_in : string option;
  od_attrs : attr_group list;
  od_subclasses : subclass_decl list;
  od_subrels : subrel_decl list;
  od_constraints : labeled_constraint list;
}

type participant_group = {
  pg_names : string list;
  pg_many : bool;  (** [set-of object...] *)
  pg_type : string option;
}

type rel_decl = {
  rd_name : string;
  rd_relates : participant_group list;
  rd_attrs : attr_group list;
  rd_subclasses : subclass_decl list;
  rd_constraints : labeled_constraint list;
}

type inher_decl = {
  id_name : string;
  id_transmitter : string;
  id_inheritor : string option;  (** [None] = [object] *)
  id_inheriting : string list;
  id_attrs : attr_group list;
  id_subclasses : subclass_decl list;
  id_constraints : labeled_constraint list;
}

type decl =
  | D_domain of string * domain_expr
  | D_obj of obj_decl
  | D_rel of rel_decl
  | D_inher of inher_decl

type schema_text = decl list
