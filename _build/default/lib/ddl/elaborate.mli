(** Elaboration of parsed DDL into a {!Compo_core.Database}.

    Beyond structural translation, elaboration resolves enum literals in
    constraint expressions: a single-segment path such as [IN] in
    [Pins.InOut = IN] that names no feature of the enclosing type, no bound
    quantifier variable, and no top-level class, but does match a case of
    some enumeration domain seen so far, is rewritten to the enum constant. *)

val install :
  Compo_core.Database.t -> Ast.schema_text -> (unit, Compo_core.Errors.t) result

val load_string :
  Compo_core.Database.t -> string -> (unit, Compo_core.Errors.t) result
(** Parse and install. *)

val load_file :
  Compo_core.Database.t -> string -> (unit, Compo_core.Errors.t) result
