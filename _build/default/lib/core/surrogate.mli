(** System-wide object identity.

    The paper (section 3): "Automatically, any object has an attribute called
    surrogate which allows a system-wide identification of the object and
    which is managed by the system."  Surrogates identify plain objects,
    relationship objects, and inheritance-relationship objects uniformly. *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_int : t -> int
(** Stable integer image, used by the persistence codec. *)

val of_int : int -> t
(** Inverse of [to_int]; only the store's generator and the persistence
    layer should mint surrogates. *)

(** Monotonic surrogate generator owned by a store. *)
module Gen : sig
  type surrogate := t
  type t

  val create : unit -> t
  val fresh : t -> surrogate
  val mark_used : t -> surrogate -> unit
  (** Advance the generator past [surrogate]; used when loading a store
      from disk so freshly minted surrogates never collide. *)

  val current : t -> int
end

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
