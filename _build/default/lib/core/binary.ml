let truncated () = Error (Errors.Io_error "truncated input")

let bad_tag what tag =
  Error (Errors.Io_error (Printf.sprintf "bad %s tag 0x%02x" what tag))

let ( let* ) = Result.bind

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let byte b i = Buffer.add_char b (Char.chr (i land 0xff))

  let int b i =
    let bytes = Bytes.create 8 in
    Bytes.set_int64_le bytes 0 (Int64.of_int i);
    Buffer.add_bytes b bytes

  let bool b v = byte b (if v then 1 else 0)

  let float b f =
    let bytes = Bytes.create 8 in
    Bytes.set_int64_le bytes 0 (Int64.bits_of_float f);
    Buffer.add_bytes b bytes

  let string b s =
    int b (String.length s);
    Buffer.add_string b s

  let list b enc_elt xs =
    int b (List.length xs);
    List.iter enc_elt xs

  let option b enc_elt = function
    | None -> byte b 0
    | Some x ->
        byte b 1;
        enc_elt x

  let contents = Buffer.contents
end

module Dec = struct
  type t = { src : string; mutable pos : int }

  let of_string src = { src; pos = 0 }
  let at_end d = d.pos >= String.length d.src

  let take d n =
    if d.pos + n > String.length d.src then truncated ()
    else begin
      let s = String.sub d.src d.pos n in
      d.pos <- d.pos + n;
      Ok s
    end

  let byte d =
    let* s = take d 1 in
    Ok (Char.code s.[0])

  let int d =
    let* s = take d 8 in
    Ok (Int64.to_int (String.get_int64_le s 0))

  let bool d =
    let* b = byte d in
    Ok (b <> 0)

  let float d =
    let* s = take d 8 in
    Ok (Int64.float_of_bits (String.get_int64_le s 0))

  let string d =
    let* n = int d in
    if n < 0 || n > String.length d.src - d.pos then truncated () else take d n

  let list d dec_elt =
    let* n = int d in
    if n < 0 then truncated ()
    else
      let rec go acc i =
        if i = 0 then Ok (List.rev acc)
        else
          let* x = dec_elt () in
          go (x :: acc) (i - 1)
      in
      go [] n

  let option d dec_elt =
    let* tag = byte d in
    match tag with
    | 0 -> Ok None
    | 1 ->
        let* x = dec_elt () in
        Ok (Some x)
    | t -> bad_tag "option" t
end

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE)                                                       *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl)
      in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.logxor !crc 0xFFFFFFFFl

