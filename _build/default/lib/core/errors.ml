type t =
  | Type_error of string
  | Unknown_type of string
  | Unknown_attribute of string
  | Unknown_class of string
  | Unknown_object of string
  | Duplicate_definition of string
  | Inherited_readonly of string
  | Constraint_violation of string
  | Binding_cycle of string
  | Invalid_binding of string
  | Schema_error of string
  | Eval_error of string
  | Delete_restricted of string
  | Parse_error of { line : int; col : int; message : string }
  | Lock_error of string
  | Access_denied of string
  | Io_error of string

exception Compo_error of t

let to_string = function
  | Type_error m -> "type error: " ^ m
  | Unknown_type m -> "unknown type: " ^ m
  | Unknown_attribute m -> "unknown attribute: " ^ m
  | Unknown_class m -> "unknown class: " ^ m
  | Unknown_object m -> "unknown object: " ^ m
  | Duplicate_definition m -> "duplicate definition: " ^ m
  | Inherited_readonly m -> "inherited data is read-only in the inheritor: " ^ m
  | Constraint_violation m -> "constraint violation: " ^ m
  | Binding_cycle m -> "inheritance binding would create a cycle: " ^ m
  | Invalid_binding m -> "invalid inheritance binding: " ^ m
  | Schema_error m -> "schema error: " ^ m
  | Eval_error m -> "evaluation error: " ^ m
  | Delete_restricted m -> "delete restricted: " ^ m
  | Parse_error { line; col; message } ->
      Printf.sprintf "parse error at line %d, column %d: %s" line col message
  | Lock_error m -> "lock error: " ^ m
  | Access_denied m -> "access denied: " ^ m
  | Io_error m -> "i/o error: " ^ m

let pp ppf e = Format.pp_print_string ppf (to_string e)

let or_fail = function Ok v -> v | Error e -> raise (Compo_error e)
let fail e = Error e

let () =
  Printexc.register_printer (function
    | Compo_error e -> Some ("Compo_error: " ^ to_string e)
    | _ -> None)
