(** Generic binary encoding primitives (length-prefixed, little-endian),
    shared by the persistence codec ({!Compo_storage.Codec}) and the
    version-registry serializer ({!Compo_versions.Versioned}). *)

(** Append-only encoder. *)
module Enc : sig
  type t

  val create : unit -> t
  val byte : t -> int -> unit
  val int : t -> int -> unit
  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val string : t -> string -> unit
  val list : t -> ('a -> unit) -> 'a list -> unit
  val option : t -> ('a -> unit) -> 'a option -> unit
  val contents : t -> string
end

(** Cursor-based decoder; malformed input yields [Io_error], never an
    exception. *)
module Dec : sig
  type t

  val of_string : string -> t
  val byte : t -> (int, Errors.t) result
  val int : t -> (int, Errors.t) result
  val bool : t -> (bool, Errors.t) result
  val float : t -> (float, Errors.t) result
  val string : t -> (string, Errors.t) result
  val list : t -> (unit -> ('a, Errors.t) result) -> ('a list, Errors.t) result
  val option : t -> (unit -> ('a, Errors.t) result) -> ('a option, Errors.t) result
  val at_end : t -> bool
end

val crc32 : string -> int32
(** CRC-32 (IEEE polynomial). *)
