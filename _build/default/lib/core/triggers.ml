let log_src = Logs.Src.create "compo.triggers" ~doc:"compo trigger rules"

module Log = (val Logs.src_log log_src : Logs.LOG)

type event =
  | Updated of { target : Surrogate.t; attr : string }
  | Stamped of {
      link : Surrogate.t;
      inheritor : Surrogate.t;
      transmitter : Surrogate.t;
      attr : string;
    }
  | Bound of { inheritor : Surrogate.t; transmitter : Surrogate.t; via : string }
  | Unbound of { inheritor : Surrogate.t }

let event_target = function
  | Updated { target; _ } -> target
  | Stamped { inheritor; _ } -> inheritor
  | Bound { inheritor; _ } -> inheritor
  | Unbound { inheritor } -> inheritor

type pattern =
  | On_update of { ty : string option; attr : string option }
  | On_stale of { via : string option; attr : string option }
  | On_bind of { via : string option }
  | On_unbind

type action = Database.t -> event -> (unit, Errors.t) result

type rule = {
  r_name : string;
  r_pattern : pattern;
  r_condition : Expr.t option;
  r_action : action;
}

type t = {
  trg_db : Database.t;
  max_depth : int;
  mutable trg_rules : rule list;  (* in addition order *)
  mutable trg_fired : (string * event) list;  (* reversed *)
  mutable depth : int;
}

let ( let* ) = Result.bind

let create ?(max_depth = 16) db =
  { trg_db = db; max_depth; trg_rules = []; trg_fired = []; depth = 0 }

let db t = t.trg_db

let add_rule t rule =
  if List.exists (fun r -> String.equal r.r_name rule.r_name) t.trg_rules then
    Error (Errors.Duplicate_definition ("rule " ^ rule.r_name))
  else begin
    t.trg_rules <- t.trg_rules @ [ rule ];
    Ok ()
  end

let remove_rule t name =
  if List.exists (fun r -> String.equal r.r_name name) t.trg_rules then begin
    t.trg_rules <- List.filter (fun r -> not (String.equal r.r_name name)) t.trg_rules;
    Ok ()
  end
  else Error (Errors.Unknown_class ("rule " ^ name))

let rules t = List.map (fun r -> r.r_name) t.trg_rules
let fired t = List.rev t.trg_fired
let clear_fired t = t.trg_fired <- []

let opt_matches pred = function None -> true | Some x -> pred x

let pattern_matches t pattern event =
  match (pattern, event) with
  | On_update { ty; attr }, Updated u ->
      opt_matches (String.equal u.attr) attr
      && opt_matches
           (fun want ->
             match Store.type_of (Database.store t.trg_db) u.target with
             | Ok ty -> String.equal ty want
             | Error _ -> false)
           ty
  | On_stale { via; attr }, Stamped s ->
      opt_matches (String.equal s.attr) attr
      && opt_matches
           (fun want ->
             match Store.type_of (Database.store t.trg_db) s.link with
             | Ok ty -> String.equal ty want
             | Error _ -> false)
           via
  | On_bind { via }, Bound b -> opt_matches (String.equal b.via) via
  | On_unbind, Unbound _ -> true
  | (On_update _ | On_stale _ | On_bind _ | On_unbind), _ -> false

let condition_holds t rule event =
  match rule.r_condition with
  | None -> true
  | Some expr -> (
      let env = Eval.env ~self:(event_target event) (Database.store t.trg_db) in
      match Eval.eval_bool env expr with Ok b -> b | Error _ -> false)

let rec dispatch t events =
  if t.depth >= t.max_depth then
    Error
      (Errors.Eval_error
         (Printf.sprintf "trigger cascade exceeded depth %d" t.max_depth))
  else begin
    t.depth <- t.depth + 1;
    let result =
      List.fold_left
        (fun acc event ->
          let* () = acc in
          List.fold_left
            (fun acc rule ->
              let* () = acc in
              if pattern_matches t rule.r_pattern event && condition_holds t rule event
              then begin
                t.trg_fired <- (rule.r_name, event) :: t.trg_fired;
                Log.debug (fun m ->
                    m "rule %s fired on %a" rule.r_name Surrogate.pp
                      (event_target event));
                rule.r_action t.trg_db event
              end
              else Ok ())
            (Ok ()) t.trg_rules)
        (Ok ()) events
    in
    t.depth <- t.depth - 1;
    result
  end

(* ------------------------------------------------------------------ *)
(* Instrumented operations                                             *)

and set_attr t s name value =
  let store = Database.store t.trg_db in
  let* () = Store.set_attr store s name value in
  let note = Printf.sprintf "transmitter attribute %s updated" name in
  let stamped = Inheritance.stamp_stale store s ~attr:name ~note in
  let stale_events =
    List.filter_map
      (fun link ->
        match Store.get store link with
        | Error _ -> None
        | Ok le -> (
            match
              ( Store.Smap.find_opt "inheritor" le.Store.participants,
                Store.Smap.find_opt "transmitter" le.Store.participants )
            with
            | Some (Value.Ref i), Some (Value.Ref tr) ->
                Some (Stamped { link; inheritor = i; transmitter = tr; attr = name })
            | _ -> None))
      stamped
  in
  dispatch t (Updated { target = s; attr = name } :: stale_events)

let bind t ~via ~transmitter ~inheritor () =
  let* link = Database.bind t.trg_db ~via ~transmitter ~inheritor () in
  let* () = dispatch t [ Bound { inheritor; transmitter; via } ] in
  Ok link

let unbind t inheritor =
  let* () = Database.unbind t.trg_db inheritor in
  dispatch t [ Unbound { inheritor } ]

(* ------------------------------------------------------------------ *)
(* Prefabricated actions                                               *)

let recompute ~attr expr db event =
  let target = event_target event in
  let env = Eval.env ~self:target (Database.store db) in
  let* v = Eval.eval env expr in
  Store.set_attr (Database.store db) target attr v

let acknowledge_link db event =
  match event with
  | Stamped { link; _ } -> Database.acknowledge db link
  | Updated _ | Bound _ | Unbound _ -> Ok ()

let log_note ~note db event =
  match event with
  | Stamped { link; _ } -> (
      let store = Database.store db in
      match Store.get store link with
      | Error _ as e -> Result.map ignore e
      | Ok le ->
          le.Store.attrs <- Store.Smap.add "_note" (Value.Str note) le.Store.attrs;
          Ok ())
  | Updated _ | Bound _ | Unbound _ -> Ok ()
