(** Runtime attribute values and their conformance to domains.

    Values are immutable; mutation happens by replacing an attribute's value
    in the store.  Sets are kept in normal form (sorted, duplicate-free) so
    that structural equality coincides with set equality. *)

type t =
  | Int of int
  | Real of float
  | Bool of bool
  | Str of string
  | Enum_case of string
  | Record of (string * t) list  (** fields sorted by name *)
  | List of t list
  | Set of t list  (** normal form: sorted, no duplicates *)
  | Matrix of t array array
  | Tuple of t list
  | Ref of Surrogate.t  (** reference to an object *)
  | Null  (** absent value (unbound inheritor, uninitialised attribute) *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order; values of different constructors are ordered by
    constructor rank, so heterogeneous sets still normalise. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val set : t list -> t
(** [set vs] builds a [Set] in normal form. *)

val record : (string * t) list -> t
(** [record fields] builds a [Record] with fields sorted by name. *)

val point : int -> int -> t
(** The paper's ubiquitous [Point] domain: [record [("X", Int x); ("Y", Int y)]]. *)

val field : string -> t -> t option
(** [field name v] projects a record field. *)

val set_members : t -> t list option
(** Members of a [Set] or [List]; [None] for other constructors. *)

val as_int : t -> int option
val as_float : t -> float option
(** [as_float] accepts both [Int] and [Real]. *)

val as_bool : t -> bool option
val as_ref : t -> Surrogate.t option

val refs : t -> Surrogate.t list
(** All surrogates reachable inside the value (for where-used indexes and
    the persistence codec). *)

val conforms : Domain.t -> t -> (unit, Errors.t) result
(** [conforms d v] checks that [v] inhabits [d].  [Null] conforms to every
    domain (attributes may be uninitialised).  [Named] domains must have
    been expanded beforehand (see {!Domain.expand}); encountering one is a
    [Schema_error]. *)
