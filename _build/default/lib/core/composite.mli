(** Composite-object operations: configurations, expansion, bill of
    materials, where-used (paper sections 2 and 6).

    "Which components does a composite object have, which components do its
    components have, etc.?" (section 2, configurations) and "sometimes it
    is necessary to see a composite object with some or all of its
    components materialized ('expansion' of a composite object)"
    (section 6).

    A {e component use} is a subobject bound (as inheritor) to the
    component object (its transmitter).  Expansion follows the complex
    object's own structure and, at each bound subobject, recurses into the
    component. *)

type node = {
  n_object : Surrogate.t;
  n_type : string;
  n_children : (string * node list) list;
      (** own subclass name -> member expansions *)
  n_component : node option;
      (** expansion of the transmitter when the object is a bound
          inheritor; [None] for unbound or non-inheritor objects *)
}

val expand : Store.t -> ?max_depth:int -> Surrogate.t -> (node, Errors.t) result
(** [max_depth] bounds recursion into components (the paper's "some or all
    of its components materialized"); own structure is always expanded.
    Default: unbounded (bindings are acyclic, so expansion terminates). *)

val node_count : node -> int
(** Number of nodes in the expansion, the composite's "size". *)

val components_of : Store.t -> Surrogate.t -> (Surrogate.t list, Errors.t) result
(** Direct components: transmitters of the object's bound subobjects. *)

val bill_of_materials :
  Store.t -> Surrogate.t -> ((Surrogate.t * int) list, Errors.t) result
(** Component objects with their total use counts, multiplied along
    use paths (a girder used twice in a truss used three times counts six
    times).  Sorted by surrogate. *)

val where_used : Store.t -> Surrogate.t -> (Surrogate.t list, Errors.t) result
(** Composite objects that use the given object as a component, i.e. the
    owners of its inheritor subobjects. *)

val implementations_of : Store.t -> Surrogate.t -> (Surrogate.t list, Errors.t) result
(** Top-level inheritors — the implementations of an interface (as opposed
    to component uses, which are subobjects). *)

val pp_node : Format.formatter -> node -> unit
