(** Integrity constraint checking.

    "Integrity constraints may be defined with the definition of an object
    type.  They are local to the object type, i.e. they define conditions
    the attributes of the objects have to obey" (section 3).  Relationship
    types and inheritance relationship types carry constraints the same way
    (section 4.1), and subrelationship classes restrict their participants
    with a [where] clause (section 3's [Wires] example).

    Constraints are checked against the {e effective} data of an object, so
    a constraint over inherited attributes (e.g. [GirderInterface]'s
    [Length < 100*Height*Width] re-stated on a composite) sees component
    values through the inheritance bindings. *)

type violation = {
  v_entity : Surrogate.t;
  v_constraint : string;  (** constraint name, or ["where"] for subrels *)
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check_entity : Store.t -> Surrogate.t -> (violation list, Errors.t) result
(** Evaluate the constraints of the entity's own type.  For a relationship
    that is a member of a subrelationship class, the owning type's [where]
    clause is checked as well.  Evaluation errors (e.g. a path through an
    unbound inheritor) are reported as violations rather than failures, so
    a partially-built design can still be checked. *)

val check_all : Store.t -> violation list
(** Check every entity in the store. *)

val check_subrel_where :
  Store.t -> parent:Surrogate.t -> rel:Surrogate.t -> (violation list, Errors.t) result
(** Check just the [where] clause of the subrelationship class of [parent]
    that contains [rel]. *)
