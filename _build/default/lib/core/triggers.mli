(** Trigger rules for semi-automatic consistency adaptation.

    The paper (sections 2 and 4.1): when a transmitter is updated, the
    attributes of the inheritance relationship record that adaptation is
    needed, and "in connection with trigger mechanisms ... these
    informations can be used for building mechanisms for semi-automatical
    corrections of consistency violations".  This module is that trigger
    mechanism: rules match events (attribute updates, staleness stamps,
    binds/unbinds), filter with a condition over the affected object, and
    run an action.

    The engine wraps the mutating operations of {!Database}; use
    {!set_attr}/{!bind}/{!unbind} here instead of the plain ones when
    rules should fire.  Actions may themselves call engine operations —
    cascades are depth-limited to keep adaptation terminating. *)

type event =
  | Updated of { target : Surrogate.t; attr : string }
      (** a locally-owned attribute changed *)
  | Stamped of {
      link : Surrogate.t;
      inheritor : Surrogate.t;
      transmitter : Surrogate.t;
      attr : string;
    }  (** an inheritance link was stamped stale by a transmitter update *)
  | Bound of { inheritor : Surrogate.t; transmitter : Surrogate.t; via : string }
  | Unbound of { inheritor : Surrogate.t }

val event_target : event -> Surrogate.t
(** The object a rule's condition and action are evaluated against: the
    updated object, the inheritor, or the (un)bound inheritor. *)

type pattern =
  | On_update of { ty : string option; attr : string option }
  | On_stale of { via : string option; attr : string option }
  | On_bind of { via : string option }
  | On_unbind

type action = Database.t -> event -> (unit, Errors.t) result

type rule = {
  r_name : string;
  r_pattern : pattern;
  r_condition : Expr.t option;
      (** evaluated with the event target as [self]; [None] = always *)
  r_action : action;
}

type t

val create : ?max_depth:int -> Database.t -> t
(** [max_depth] bounds action-triggered cascades (default 16); exceeding
    it fails the outermost operation with [Eval_error]. *)

val db : t -> Database.t
val add_rule : t -> rule -> (unit, Errors.t) result
val remove_rule : t -> string -> (unit, Errors.t) result
val rules : t -> string list

val fired : t -> (string * event) list
(** Audit log of (rule, event) firings, oldest first. *)

val clear_fired : t -> unit

(** {1 Instrumented operations} *)

val set_attr : t -> Surrogate.t -> string -> Value.t -> (unit, Errors.t) result
(** Writes the attribute, stamps dependent links, then fires [On_update]
    for the target and [On_stale] per stamped link.  Rule-driven writes
    are validated against domains but not against the database's eager
    constraint checks; run {!Database.validate} in a rule action when a
    cascade must stay constraint-clean. *)

val bind :
  t -> via:string -> transmitter:Surrogate.t -> inheritor:Surrogate.t -> unit ->
  (Surrogate.t, Errors.t) result

val unbind : t -> Surrogate.t -> (unit, Errors.t) result

(** {1 Prefabricated actions} *)

val recompute : attr:string -> Expr.t -> action
(** Derived attributes: set [attr] of the event target to the expression's
    value (evaluated with the target as [self]).  The classic
    semi-automatic adaptation: recompute local data from inherited data
    whenever the transmitter changes. *)

val acknowledge_link : action
(** Clear the staleness flag of the event's link — for rules that fully
    repair the inheritor, completing the adaptation automatically. *)

val log_note : note:string -> action
(** Overwrite the link's [_note] with a rule-specific message (e.g. which
    adaptation procedure should be run manually). *)
