type violation = {
  v_entity : Surrogate.t;
  v_constraint : string;
  v_detail : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "%a: constraint %s violated%s" Surrogate.pp v.v_entity
    v.v_constraint
    (if v.v_detail = "" then "" else " (" ^ v.v_detail ^ ")")

let ( let* ) = Result.bind

let constraints_of_type schema ty =
  match Schema.find schema ty with
  | Some (Schema.Obj_type o) -> o.ot_constraints
  | Some (Schema.Rel_type r) -> r.rt_constraints
  | Some (Schema.Inher_type i) -> i.it_constraints
  | None -> []

let eval_constraint store s (c : Schema.named_constraint) =
  let env = Eval.env ~self:s store in
  match Eval.eval_bool env c.c_expr with
  | Ok true -> None
  | Ok false ->
      Some
        {
          v_entity = s;
          v_constraint = c.c_name;
          v_detail = Expr.to_string c.c_expr;
        }
  | Error e ->
      Some
        {
          v_entity = s;
          v_constraint = c.c_name;
          v_detail = "evaluation failed: " ^ Errors.to_string e;
        }

(* Locate the subrelationship class of [parent] containing [rel]. *)
let subrel_class_of store parent rel =
  match Store.get store parent with
  | Error _ -> None
  | Ok pe ->
      Store.Smap.fold
        (fun name members acc ->
          match acc with
          | Some _ -> acc
          | None ->
              if List.exists (Surrogate.equal rel) members then Some name
              else None)
        pe.Store.subrels None

let subrel_def_of schema parent_ty name =
  match Schema.find schema parent_ty with
  | Some (Schema.Obj_type o) ->
      List.find_opt
        (fun (sr : Schema.subrel_def) -> String.equal sr.sr_name name)
        o.ot_subrels
  | Some (Schema.Rel_type _) | Some (Schema.Inher_type _) | None -> None

let check_subrel_where store ~parent ~rel =
  let schema = Store.schema store in
  let* pe = Store.get store parent in
  match subrel_class_of store parent rel with
  | None ->
      Error
        (Errors.Unknown_class
           (Printf.sprintf "%s is not a subrelationship of %s"
              (Surrogate.to_string rel) (Surrogate.to_string parent)))
  | Some sub_name -> (
      match subrel_def_of schema pe.Store.type_name sub_name with
      | None -> Ok []
      | Some sr -> (
          match sr.sr_where with
          | None -> Ok []
          | Some pred -> (
              let binder = Option.value ~default:sr.sr_name sr.sr_binder in
              let env =
                Eval.with_var (Eval.env ~self:parent store) binder (Eval.E rel)
              in
              match Eval.eval_bool env pred with
              | Ok true -> Ok []
              | Ok false ->
                  Ok
                    [
                      {
                        v_entity = rel;
                        v_constraint = sub_name ^ ".where";
                        v_detail = Expr.to_string pred;
                      };
                    ]
              | Error e ->
                  Ok
                    [
                      {
                        v_entity = rel;
                        v_constraint = sub_name ^ ".where";
                        v_detail = "evaluation failed: " ^ Errors.to_string e;
                      };
                    ])))

let check_entity store s =
  let schema = Store.schema store in
  let* e = Store.get store s in
  let own =
    List.filter_map
      (eval_constraint store s)
      (constraints_of_type schema e.Store.type_name)
  in
  let* where_violations =
    match (e.Store.kind, e.Store.owner) with
    | Store.Relationship_entity, Some parent -> (
        match check_subrel_where store ~parent ~rel:s with
        | Ok vs -> Ok vs
        | Error _ -> Ok [] (* not a subrel member: nothing to check *))
    | _ -> Ok []
  in
  Ok (own @ where_violations)

let check_all store =
  Store.fold store
    (fun acc e ->
      match check_entity store e.Store.id with
      | Ok vs -> vs @ acc
      | Error _ -> acc)
    []
