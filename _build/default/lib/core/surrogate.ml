type t = int

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let to_string s = "@" ^ string_of_int s
let pp ppf s = Format.pp_print_string ppf (to_string s)
let to_int s = s
let of_int i = i

module Gen = struct
  type t = { mutable next : int }

  let create () = { next = 1 }

  let fresh g =
    let s = g.next in
    g.next <- g.next + 1;
    s

  let mark_used g s = if s >= g.next then g.next <- s + 1
  let current g = g.next
end

module Map = Map.Make (Int)
module Set = Set.Make (Int)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
