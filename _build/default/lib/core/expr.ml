type path = string list
type unop = Not | Neg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | In

type t =
  | Const of Value.t
  | Path of path
  | Count of path * t option
  | Sum of path
  | Unop of unop * t
  | Binop of binop * t * t
  | Forall of (string * path) list * t
  | Exists of (string * path) list * t

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"
  | In -> "in"

let pp_path ppf p = Format.pp_print_string ppf (String.concat "." p)

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Path p -> pp_path ppf p
  | Count (p, None) -> Format.fprintf ppf "count (%a)" pp_path p
  | Count (p, Some filter) ->
      Format.fprintf ppf "count (%a) where %a" pp_path p pp filter
  | Sum p -> Format.fprintf ppf "sum (%a)" pp_path p
  | Unop (Not, e) -> Format.fprintf ppf "not (%a)" pp e
  | Unop (Neg, e) -> Format.fprintf ppf "-(%a)" pp e
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Forall (binders, body) ->
      Format.fprintf ppf "for (%a): %a" pp_binders binders pp body
  | Exists (binders, body) ->
      Format.fprintf ppf "exists (%a): %a" pp_binders binders pp body

and pp_binders ppf binders =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (v, p) -> Format.fprintf ppf "%s in %a" v pp_path p)
    ppf binders

let to_string e = Format.asprintf "%a" pp e

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Value.equal x y
  | Path p, Path q -> List.equal String.equal p q
  | Count (p, f), Count (q, g) ->
      List.equal String.equal p q && Option.equal equal f g
  | Sum p, Sum q -> List.equal String.equal p q
  | Unop (o, x), Unop (p, y) -> o = p && equal x y
  | Binop (o, x, x'), Binop (p, y, y') -> o = p && equal x y && equal x' y'
  | Forall (bs, x), Forall (cs, y) | Exists (bs, x), Exists (cs, y) ->
      List.equal
        (fun (v, p) (w, q) -> String.equal v w && List.equal String.equal p q)
        bs cs
      && equal x y
  | (Const _ | Path _ | Count _ | Sum _ | Unop _ | Binop _ | Forall _
    | Exists _), _ ->
      false

let path p = Path p
let int i = Const (Value.Int i)
let str s = Const (Value.Str s)
let enum c = Const (Value.Enum_case c)
let ( = ) a b = Binop (Eq, a, b)
let ( <> ) a b = Binop (Ne, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
let ( && ) a b = Binop (And, a, b)
let ( || ) a b = Binop (Or, a, b)
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let not_ e = Unop (Not, e)
let in_ a b = Binop (In, a, b)
let count ?where p = Count (p, where)
let sum p = Sum p
let forall binders body = Forall (binders, body)
let exists binders body = Exists (binders, body)
