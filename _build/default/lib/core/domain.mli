(** Attribute domains (paper section 3).

    "Attribute values belong to a particular domain.  Domains may be simple
    (integer, string, etc.) or structured (using constructors as record,
    list-of, set-of, etc.)."  The paper's examples additionally use
    enumeration domains (e.g. [domain I/O = (IN, OUT)]) and a matrix
    constructor ([Function: matrix-of boolean]), so both are first-class. *)

type t =
  | Integer
  | Real
  | Boolean
  | String
  | Enum of string list  (** e.g. [domain I/O = (IN, OUT)] *)
  | Record of (string * t) list  (** e.g. [domain Point = (X, Y: integer)] *)
  | List_of of t
  | Set_of of t
  | Matrix_of of t  (** e.g. [Function: matrix-of boolean] *)
  | Tuple of t list
  | Ref of string option
      (** Reference to an object; [Ref (Some ty)] restricts the target's
          object type, [Ref None] admits any object.  Used for relationship
          participants ([object-of-type T] vs. plain [object]). *)
  | Named of string
      (** Use of a named domain; resolved against a registry by [expand]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val well_formed : t -> (unit, Errors.t) result
(** Rejects empty enums, duplicate record fields, and empty tuples. *)

val expand : lookup:(string -> t option) -> t -> (t, Errors.t) result
(** [expand ~lookup d] replaces every [Named n] by [lookup n], recursively.
    Named domains may not be recursive; cycles are reported as
    [Schema_error]. *)
