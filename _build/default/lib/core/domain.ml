type t =
  | Integer
  | Real
  | Boolean
  | String
  | Enum of string list
  | Record of (string * t) list
  | List_of of t
  | Set_of of t
  | Matrix_of of t
  | Tuple of t list
  | Ref of string option
  | Named of string

let rec equal a b =
  match (a, b) with
  | Integer, Integer | Real, Real | Boolean, Boolean | String, String -> true
  | Enum xs, Enum ys -> List.equal String.equal xs ys
  | Record xs, Record ys ->
      List.equal (fun (n, d) (m, e) -> String.equal n m && equal d e) xs ys
  | List_of d, List_of e | Set_of d, Set_of e | Matrix_of d, Matrix_of e ->
      equal d e
  | Tuple xs, Tuple ys -> List.equal equal xs ys
  | Ref a, Ref b -> Option.equal String.equal a b
  | Named a, Named b -> String.equal a b
  | ( ( Integer | Real | Boolean | String | Enum _ | Record _ | List_of _
      | Set_of _ | Matrix_of _ | Tuple _ | Ref _ | Named _ ),
      _ ) ->
      false

let rec pp ppf = function
  | Integer -> Format.pp_print_string ppf "integer"
  | Real -> Format.pp_print_string ppf "real"
  | Boolean -> Format.pp_print_string ppf "boolean"
  | String -> Format.pp_print_string ppf "string"
  | Enum cs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_string)
        cs
  | Record fields ->
      let pp_field ppf (n, d) = Format.fprintf ppf "%s: %a" n pp d in
      Format.fprintf ppf "record (%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_field)
        fields
  | List_of d -> Format.fprintf ppf "list-of %a" pp d
  | Set_of d -> Format.fprintf ppf "set-of %a" pp d
  | Matrix_of d -> Format.fprintf ppf "matrix-of %a" pp d
  | Tuple ds ->
      Format.fprintf ppf "tuple (%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        ds
  | Ref None -> Format.pp_print_string ppf "object"
  | Ref (Some ty) -> Format.fprintf ppf "object-of-type %s" ty
  | Named n -> Format.pp_print_string ppf n

let to_string d = Format.asprintf "%a" pp d

let rec well_formed = function
  | Integer | Real | Boolean | String | Ref _ | Named _ -> Ok ()
  | Enum [] -> Error (Errors.Schema_error "enumeration domain with no cases")
  | Enum cs ->
      let sorted = List.sort_uniq String.compare cs in
      if List.length sorted <> List.length cs then
        Error (Errors.Schema_error "enumeration domain with duplicate cases")
      else Ok ()
  | Record [] -> Error (Errors.Schema_error "record domain with no fields")
  | Record fields ->
      let names = List.map fst fields in
      let sorted = List.sort_uniq String.compare names in
      if List.length sorted <> List.length names then
        Error (Errors.Schema_error "record domain with duplicate field names")
      else
        List.fold_left
          (fun acc (_, d) ->
            match acc with Ok () -> well_formed d | Error _ as e -> e)
          (Ok ()) fields
  | List_of d | Set_of d | Matrix_of d -> well_formed d
  | Tuple [] -> Error (Errors.Schema_error "tuple domain with no components")
  | Tuple ds ->
      List.fold_left
        (fun acc d ->
          match acc with Ok () -> well_formed d | Error _ as e -> e)
        (Ok ()) ds

let expand ~lookup domain =
  (* [seen] tracks named domains on the current expansion path so that a
     recursive named domain is reported rather than looping forever. *)
  let rec go seen = function
    | (Integer | Real | Boolean | String | Enum _ | Ref _) as d -> Ok d
    | Record fields ->
        let rec fields_go acc = function
          | [] -> Ok (Record (List.rev acc))
          | (n, d) :: rest -> (
              match go seen d with
              | Ok d' -> fields_go ((n, d') :: acc) rest
              | Error _ as e -> e)
        in
        fields_go [] fields
    | List_of d -> Result.map (fun d' -> List_of d') (go seen d)
    | Set_of d -> Result.map (fun d' -> Set_of d') (go seen d)
    | Matrix_of d -> Result.map (fun d' -> Matrix_of d') (go seen d)
    | Tuple ds ->
        let rec tuple_go acc = function
          | [] -> Ok (Tuple (List.rev acc))
          | d :: rest -> (
              match go seen d with
              | Ok d' -> tuple_go (d' :: acc) rest
              | Error _ as e -> e)
        in
        tuple_go [] ds
    | Named n -> (
        if List.mem n seen then
          Error (Errors.Schema_error ("recursive named domain: " ^ n))
        else
          match lookup n with
          | None -> Error (Errors.Unknown_type ("domain " ^ n))
          | Some d -> go (n :: seen) d)
  in
  go [] domain
