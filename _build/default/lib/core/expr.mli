(** Constraint and query expressions.

    The expression language covers everything the paper's constraint
    listings use (section 3 and section 5):

    - path navigation: [Pins.InOut], [SubGates.Pins], [Girders.Bores]
    - aggregates with filters: [count (Pins) where Pins.InOut = IN],
      [sum (Bores.Length)]
    - quantification: [for (s in Bolt, n in Nut): s.Diameter = n.Diameter]
    - arithmetic: [Length < 100 * Height * Width]
    - membership: [Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins]

    Expressions are evaluated by {!Eval} against a store, a [self] object,
    and variable bindings. *)

type path = string list
(** Non-empty segment list.  The first segment resolves, in order, against:
    bound variables, attributes of [self], subclasses / subrelationship
    classes / participants of [self].  Later segments step through record
    fields, collections, attributes, subclasses, or participants of the
    objects reached so far. *)

type unop = Not | Neg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | In  (** membership of a scalar in a collection or class-path *)

type t =
  | Const of Value.t
  | Path of path
  | Count of path * t option
      (** [Count (p, Some filter)] counts members of the class reached by
          [p] satisfying [filter]; inside [filter], the last segment of [p]
          is bound to the current member (the paper writes
          [count (Pins) = 2 where Pins.InOut = IN]). *)
  | Sum of path  (** numeric sum over the class/collection reached *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Forall of (string * path) list * t
      (** [for (s in Bolt, n in Nut): body] *)
  | Exists of (string * path) list * t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

(** Convenience constructors used by hand-built schemas and tests. *)

val path : string list -> t
val int : int -> t
val str : string -> t
val enum : string -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val not_ : t -> t
val in_ : t -> t -> t
val count : ?where:t -> string list -> t
val sum : string list -> t
val forall : (string * string list) list -> t -> t
val exists : (string * string list) list -> t -> t
