type attr_def = { attr_name : string; attr_domain : Domain.t }
type named_constraint = { c_name : string; c_expr : Expr.t }
type card = One | Many

type participant = {
  p_name : string;
  p_card : card;
  p_type : string option;
}

type member_type = Named_type of string | Inline of obj_type

and subclass_def = { sc_name : string; sc_member : member_type }

and subrel_def = {
  sr_name : string;
  sr_rel_type : string;
  sr_binder : string option;
  sr_where : Expr.t option;
}

and obj_type = {
  ot_name : string;
  ot_inheritor_in : string option;
  ot_attrs : attr_def list;
  ot_subclasses : subclass_def list;
  ot_subrels : subrel_def list;
  ot_constraints : named_constraint list;
}

type rel_type = {
  rt_name : string;
  rt_relates : participant list;
  rt_attrs : attr_def list;
  rt_subclasses : subclass_def list;
  rt_constraints : named_constraint list;
}

type inher_rel_type = {
  it_name : string;
  it_transmitter : string;
  it_inheritor : string option;
  it_inheriting : string list;
  it_attrs : attr_def list;
  it_subclasses : subclass_def list;
  it_constraints : named_constraint list;
}

type entry =
  | Obj_type of obj_type
  | Rel_type of rel_type
  | Inher_type of inher_rel_type

type source = Own | Via of string

type t = {
  types : (string, entry) Hashtbl.t;
  named_domains : (string, Domain.t) Hashtbl.t;
  mutable order : string list;  (* definition order, reversed *)
  mutable domain_order : string list;
  (* Effective feature sets are static once a type is defined (the
     inheritor-in chain is fixed at definition time), so they are memoized;
     without the cache an inherited read costs O(depth^2) because every
     resolution hop would recompute its suffix of the chain. *)
  attr_cache : (string, (attr_def * source) list) Hashtbl.t;
  subclass_cache : (string, (subclass_def * source) list) Hashtbl.t;
}

let create () =
  {
    types = Hashtbl.create 64;
    named_domains = Hashtbl.create 16;
    order = [];
    domain_order = [];
    attr_cache = Hashtbl.create 64;
    subclass_cache = Hashtbl.create 64;
  }

let ( let* ) = Result.bind

let entry_name = function
  | Obj_type o -> o.ot_name
  | Rel_type r -> r.rt_name
  | Inher_type i -> i.it_name

let find t name = Hashtbl.find_opt t.types name

let find_obj_type t name =
  match find t name with
  | Some (Obj_type o) -> Ok o
  | Some _ -> Error (Errors.Schema_error (name ^ " is not an object type"))
  | None -> Error (Errors.Unknown_type name)

let find_rel_type t name =
  match find t name with
  | Some (Rel_type r) -> Ok r
  | Some _ ->
      Error (Errors.Schema_error (name ^ " is not a relationship type"))
  | None -> Error (Errors.Unknown_type name)

let find_inher_rel_type t name =
  match find t name with
  | Some (Inher_type i) -> Ok i
  | Some _ ->
      Error
        (Errors.Schema_error (name ^ " is not an inheritance relationship type"))
  | None -> Error (Errors.Unknown_type name)

let find_domain t name = Hashtbl.find_opt t.named_domains name

let expand_domain t d =
  Domain.expand ~lookup:(fun n -> Hashtbl.find_opt t.named_domains n) d

let entries t = List.rev_map (fun n -> Hashtbl.find t.types n) t.order

let domains t =
  List.rev_map
    (fun n -> (n, Hashtbl.find t.named_domains n))
    t.domain_order

let subclass_member_type _t sc =
  match sc.sc_member with
  | Named_type n -> n
  | Inline o -> o.ot_name

(* ------------------------------------------------------------------ *)
(* Effective features: own + permeable transmitter features, following
   the inheritor-in chain at the type level (plain generalization).    *)

let rec effective_attrs_guarded t visited name =
  if List.mem name visited then
    Error (Errors.Binding_cycle ("type-level inheritance cycle at " ^ name))
  else
    match find t name with
    | None -> Error (Errors.Unknown_type name)
    | Some (Rel_type r) ->
        Ok (List.map (fun a -> (a, Own)) r.rt_attrs)
    | Some (Inher_type i) ->
        Ok (List.map (fun a -> (a, Own)) i.it_attrs)
    | Some (Obj_type o) -> (
        let own = List.map (fun a -> (a, Own)) o.ot_attrs in
        match o.ot_inheritor_in with
        | None -> Ok own
        | Some rel_name ->
            let* irel = find_inher_rel_type t rel_name in
            let* trans =
              effective_attrs_guarded t (name :: visited) irel.it_transmitter
            in
            let inherited =
              List.filter_map
                (fun (a, _) ->
                  if List.mem a.attr_name irel.it_inheriting then
                    Some (a, Via rel_name)
                  else None)
                trans
            in
            Ok (own @ inherited))

let effective_attrs t name =
  match Hashtbl.find_opt t.attr_cache name with
  | Some cached -> Ok cached
  | None -> (
      match effective_attrs_guarded t [] name with
      | Ok attrs ->
          Hashtbl.replace t.attr_cache name attrs;
          Ok attrs
      | Error _ as e -> e)

let rec effective_subclasses_guarded t visited name =
  if List.mem name visited then
    Error (Errors.Binding_cycle ("type-level inheritance cycle at " ^ name))
  else
    match find t name with
    | None -> Error (Errors.Unknown_type name)
    | Some (Rel_type r) -> Ok (List.map (fun s -> (s, Own)) r.rt_subclasses)
    | Some (Inher_type i) -> Ok (List.map (fun s -> (s, Own)) i.it_subclasses)
    | Some (Obj_type o) -> (
        let own = List.map (fun s -> (s, Own)) o.ot_subclasses in
        match o.ot_inheritor_in with
        | None -> Ok own
        | Some rel_name ->
            let* irel = find_inher_rel_type t rel_name in
            let* trans =
              effective_subclasses_guarded t (name :: visited)
                irel.it_transmitter
            in
            let inherited =
              List.filter_map
                (fun (s, _) ->
                  if List.mem s.sc_name irel.it_inheriting then
                    Some (s, Via rel_name)
                  else None)
                trans
            in
            Ok (own @ inherited))

let effective_subclasses t name =
  match Hashtbl.find_opt t.subclass_cache name with
  | Some cached -> Ok cached
  | None -> (
      match effective_subclasses_guarded t [] name with
      | Ok subs ->
          Hashtbl.replace t.subclass_cache name subs;
          Ok subs
      | Error _ as e -> e)

let find_effective_attr t ty name =
  match effective_attrs t ty with
  | Error _ -> None
  | Ok attrs ->
      List.find_opt (fun (a, _) -> String.equal a.attr_name name) attrs

let find_effective_subclass t ty name =
  match effective_subclasses t ty with
  | Error _ -> None
  | Ok subs -> List.find_opt (fun (s, _) -> String.equal s.sc_name name) subs

let attr_source t ty name =
  let attr =
    match effective_attrs t ty with
    | Error _ -> None
    | Ok attrs ->
        List.find_map
          (fun (a, src) ->
            if String.equal a.attr_name name then Some src else None)
          attrs
  in
  match attr with
  | Some _ as s -> s
  | None -> (
      match effective_subclasses t ty with
      | Error _ -> None
      | Ok subs ->
          List.find_map
            (fun (s, src) ->
              if String.equal s.sc_name name then Some src else None)
            subs)

let transmitter_chain t name =
  let rec go acc name =
    match find t name with
    | Some (Obj_type { ot_inheritor_in = Some rel; _ }) -> (
        match find t rel with
        | Some (Inher_type i) ->
            if List.mem i.it_transmitter acc then List.rev acc
            else go (i.it_transmitter :: acc) i.it_transmitter
        | Some _ | None -> List.rev acc)
    | Some _ | None -> List.rev acc
  in
  go [] name

(* ------------------------------------------------------------------ *)
(* Definition-time validation                                          *)

let check_fresh t name =
  if Hashtbl.mem t.types name then
    Error (Errors.Duplicate_definition ("type " ^ name))
  else Ok ()

let check_distinct what names =
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    Error (Errors.Schema_error ("duplicate " ^ what ^ " name"))
  else Ok ()

let check_attr_domains t attrs =
  List.fold_left
    (fun acc a ->
      let* () = acc in
      let* expanded = expand_domain t a.attr_domain in
      Domain.well_formed expanded)
    (Ok ()) attrs

let register t entry =
  Hashtbl.replace t.types (entry_name entry) entry;
  t.order <- entry_name entry :: t.order

let define_domain t name d =
  if Hashtbl.mem t.named_domains name then
    Error (Errors.Duplicate_definition ("domain " ^ name))
  else
    let* () = Domain.well_formed d in
    Hashtbl.replace t.named_domains name d;
    (* Expansion both detects recursion through pre-existing names and
       validates that every referenced domain exists. *)
    match expand_domain t d with
    | Ok _ ->
        t.domain_order <- name :: t.domain_order;
        Ok ()
    | Error e ->
        Hashtbl.remove t.named_domains name;
        Error e

let check_subrels t subrels =
  List.fold_left
    (fun acc sr ->
      let* () = acc in
      let* _ = find_rel_type t sr.sr_rel_type in
      Ok ())
    (Ok ()) subrels

(* Accepting an [inheritor-in: R] declaration on type [ty]: R must exist,
   and R's declared inheritor must be [object] or [ty] itself.  Inline
   subclass member types carry generated names, so schemas that want a
   typed inheritor clause must use named member types. *)
let check_inheritor_in t ty_name = function
  | None -> Ok ()
  | Some rel_name -> (
      let* irel = find_inher_rel_type t rel_name in
      match irel.it_inheritor with
      | None -> Ok ()
      | Some expected when String.equal expected ty_name -> Ok ()
      | Some expected ->
          Error
            (Errors.Schema_error
               (Printf.sprintf
                  "%s declares inheritor-in %s, but %s admits only %s as \
                   inheritor"
                  ty_name rel_name rel_name expected)))

(* No own feature may shadow a permeable inherited one: a local value under
   an inherited name would amount to updating inherited data. *)
let check_no_shadowing t ty_name inheritor_in own_names =
  match inheritor_in with
  | None -> Ok ()
  | Some rel_name ->
      let* irel = find_inher_rel_type t rel_name in
      let clash = List.filter (fun n -> List.mem n irel.it_inheriting) own_names in
      (match clash with
      | [] -> Ok ()
      | n :: _ ->
          Error
            (Errors.Schema_error
               (Printf.sprintf
                  "%s: local name %s shadows an attribute inherited through %s"
                  ty_name n rel_name)))

let rec define_obj_type t (o : obj_type) =
  let* () = check_fresh t o.ot_name in
  let* () = check_attr_domains t o.ot_attrs in
  let own_names =
    List.map (fun a -> a.attr_name) o.ot_attrs
    @ List.map (fun s -> s.sc_name) o.ot_subclasses
    @ List.map (fun r -> r.sr_name) o.ot_subrels
  in
  let* () = check_distinct "feature" own_names in
  let* () = check_inheritor_in t o.ot_name o.ot_inheritor_in in
  let* () = check_no_shadowing t o.ot_name o.ot_inheritor_in own_names in
  let* () = check_subrels t o.ot_subrels in
  (* Register inline subclass member types under generated names, depth
     first, so the stored type refers to them by name only. *)
  let* subclasses = register_subclasses t o.ot_name o.ot_subclasses in
  let resolved = { o with ot_subclasses = subclasses } in
  register t (Obj_type resolved);
  (* Effective-feature computation must succeed now that everything this
     type references is in place; it also detects type-level cycles. *)
  (match effective_attrs t o.ot_name with
  | Ok _ -> Ok ()
  | Error e ->
      Hashtbl.remove t.types o.ot_name;
      t.order <- List.filter (fun n -> not (String.equal n o.ot_name)) t.order;
      Error e)

and register_subclasses t owner subclasses =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | sc :: rest -> (
        match sc.sc_member with
        | Named_type n -> (
            match find t n with
            | Some (Obj_type _) -> go ({ sc with sc_member = Named_type n } :: acc) rest
            | Some _ ->
                Error
                  (Errors.Schema_error
                     (Printf.sprintf "subclass %s: %s is not an object type"
                        sc.sc_name n))
            | None -> Error (Errors.Unknown_type n))
        | Inline inline ->
            let gen_name = owner ^ "." ^ sc.sc_name in
            let* () = define_obj_type t { inline with ot_name = gen_name } in
            go ({ sc with sc_member = Named_type gen_name } :: acc) rest)
  in
  go [] subclasses

let define_rel_type t (r : rel_type) =
  let* () = check_fresh t r.rt_name in
  let* () = check_attr_domains t r.rt_attrs in
  let own_names =
    List.map (fun p -> p.p_name) r.rt_relates
    @ List.map (fun a -> a.attr_name) r.rt_attrs
    @ List.map (fun s -> s.sc_name) r.rt_subclasses
  in
  let* () = check_distinct "feature" own_names in
  let* () =
    if r.rt_relates = [] then
      Error (Errors.Schema_error (r.rt_name ^ ": relates clause is empty"))
    else Ok ()
  in
  (* Participant types may be defined later only if missing entirely is an
     error we can afford to defer; the paper defines participant types
     first, so we check strictly. *)
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        match p.p_type with
        | None -> Ok ()
        | Some ty -> (
            match find t ty with
            | Some (Obj_type _) -> Ok ()
            | Some _ ->
                Error
                  (Errors.Schema_error
                     (Printf.sprintf "participant %s: %s is not an object type"
                        p.p_name ty))
            | None -> Error (Errors.Unknown_type ty)))
      (Ok ()) r.rt_relates
  in
  let* subclasses = register_subclasses t r.rt_name r.rt_subclasses in
  register t (Rel_type { r with rt_subclasses = subclasses });
  Ok ()

let define_inher_rel_type t (i : inher_rel_type) =
  let* () = check_fresh t i.it_name in
  let* () = check_attr_domains t i.it_attrs in
  let* () =
    check_distinct "feature"
      (List.map (fun a -> a.attr_name) i.it_attrs
      @ List.map (fun s -> s.sc_name) i.it_subclasses)
  in
  let* () = check_distinct "inheriting clause" i.it_inheriting in
  let* () =
    if i.it_inheriting = [] then
      Error (Errors.Schema_error (i.it_name ^ ": empty inheriting clause"))
    else Ok ()
  in
  (* The transmitter type must exist; every inheriting name must be one of
     its effective attributes or subclasses (the transmitter may itself
     inherit them, as GateInterface inherits Pins from GateInterface_I). *)
  let* _ = find_obj_type t i.it_transmitter in
  let* trans_attrs = effective_attrs t i.it_transmitter in
  let* trans_subs = effective_subclasses t i.it_transmitter in
  let available =
    List.map (fun (a, _) -> a.attr_name) trans_attrs
    @ List.map (fun (s, _) -> s.sc_name) trans_subs
  in
  let* () =
    List.fold_left
      (fun acc n ->
        let* () = acc in
        if List.mem n available then Ok ()
        else
          Error
            (Errors.Schema_error
               (Printf.sprintf
                  "%s: inheriting clause names %s, which is not a feature of %s"
                  i.it_name n i.it_transmitter)))
      (Ok ()) i.it_inheriting
  in
  let* subclasses = register_subclasses t i.it_name i.it_subclasses in
  register t (Inher_type { i with it_subclasses = subclasses });
  Ok ()
