type t =
  | Int of int
  | Real of float
  | Bool of bool
  | Str of string
  | Enum_case of string
  | Record of (string * t) list
  | List of t list
  | Set of t list
  | Matrix of t array array
  | Tuple of t list
  | Ref of Surrogate.t
  | Null

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Real _ -> 3
  | Str _ -> 4
  | Enum_case _ -> 5
  | Record _ -> 6
  | List _ -> 7
  | Set _ -> 8
  | Matrix _ -> 9
  | Tuple _ -> 10
  | Ref _ -> 11

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Real x, Real y -> Float.compare x y
  | Str x, Str y | Enum_case x, Enum_case y -> String.compare x y
  | Record xs, Record ys ->
      List.compare (fun (n, v) (m, w) ->
          let c = String.compare n m in
          if c <> 0 then c else compare v w)
        xs ys
  | List xs, List ys | Set xs, Set ys | Tuple xs, Tuple ys ->
      List.compare compare xs ys
  | Matrix x, Matrix y ->
      let row_list m = Array.to_list (Array.map Array.to_list m) in
      List.compare (List.compare compare) (row_list x) (row_list y)
  | Ref x, Ref y -> Surrogate.compare x y
  | ( ( Null | Bool _ | Int _ | Real _ | Str _ | Enum_case _ | Record _
      | List _ | Set _ | Matrix _ | Tuple _ | Ref _ ),
      _ ) ->
      Int.compare (rank a) (rank b)

let equal a b = compare a b = 0
let hash v = Hashtbl.hash v

let rec pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Real f -> Format.pp_print_float ppf f
  | Bool b -> Format.pp_print_bool ppf b
  | Str s -> Format.fprintf ppf "%S" s
  | Enum_case c -> Format.pp_print_string ppf c
  | Record fields ->
      let pp_field ppf (n, v) = Format.fprintf ppf "%s = %a" n pp v in
      Format.fprintf ppf "(%a)" (pp_sep_list "; " pp_field) fields
  | List vs -> Format.fprintf ppf "[%a]" (pp_sep_list "; " pp) vs
  | Set vs -> Format.fprintf ppf "{%a}" (pp_sep_list "; " pp) vs
  | Matrix rows ->
      let pp_row ppf row =
        Format.fprintf ppf "[%a]" (pp_sep_list " " pp) (Array.to_list row)
      in
      Format.fprintf ppf "[|%a|]" (pp_sep_list "; " pp_row) (Array.to_list rows)
  | Tuple vs -> Format.fprintf ppf "(%a)" (pp_sep_list ", " pp) vs
  | Ref s -> Surrogate.pp ppf s
  | Null -> Format.pp_print_string ppf "null"

and pp_sep_list : 'a. string -> (Format.formatter -> 'a -> unit)
    -> Format.formatter -> 'a list -> unit =
 fun sep pp_elt ppf xs ->
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf sep)
    pp_elt ppf xs

let to_string v = Format.asprintf "%a" pp v
let set vs = Set (List.sort_uniq compare vs)

let record fields =
  Record (List.sort (fun (n, _) (m, _) -> String.compare n m) fields)

let point x y = record [ ("X", Int x); ("Y", Int y) ]

let field name = function
  | Record fields -> List.assoc_opt name fields
  | _ -> None

let set_members = function Set vs | List vs -> Some vs | _ -> None
let as_int = function Int i -> Some i | _ -> None

let as_float = function
  | Real f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_bool = function Bool b -> Some b | _ -> None
let as_ref = function Ref s -> Some s | _ -> None

let refs v =
  let rec go acc = function
    | Ref s -> s :: acc
    | Record fields -> List.fold_left (fun acc (_, v) -> go acc v) acc fields
    | List vs | Set vs | Tuple vs -> List.fold_left go acc vs
    | Matrix rows ->
        Array.fold_left (fun acc row -> Array.fold_left go acc row) acc rows
    | Int _ | Real _ | Bool _ | Str _ | Enum_case _ | Null -> acc
  in
  List.rev (go [] v)

let conforms domain value =
  let err expected got =
    Error
      (Errors.Type_error
         (Printf.sprintf "expected %s, got %s" expected (to_string got)))
  in
  let rec go d v =
    match (d, v) with
    | _, Null -> Ok ()
    | Domain.Integer, Int _ -> Ok ()
    | Domain.Real, (Real _ | Int _) -> Ok ()
    | Domain.Boolean, Bool _ -> Ok ()
    | Domain.String, Str _ -> Ok ()
    | Domain.Enum cases, Enum_case c ->
        if List.mem c cases then Ok ()
        else
          Error
            (Errors.Type_error
               (Printf.sprintf "%s is not a case of %s" c (Domain.to_string d)))
    | Domain.Record fields, Record given ->
        let expected_names =
          List.sort String.compare (List.map fst fields)
        in
        let given_names = List.map fst given in
        if not (List.equal String.equal expected_names given_names) then
          err (Domain.to_string d) v
        else
          List.fold_left
            (fun acc (n, fv) ->
              match acc with
              | Error _ as e -> e
              | Ok () -> go (List.assoc n fields) fv)
            (Ok ()) given
    | Domain.List_of e, List vs | Domain.Set_of e, Set vs ->
        List.fold_left
          (fun acc v -> match acc with Error _ as err -> err | Ok () -> go e v)
          (Ok ()) vs
    | Domain.Matrix_of e, Matrix rows ->
        let width = if Array.length rows = 0 then 0 else Array.length rows.(0) in
        if Array.exists (fun row -> Array.length row <> width) rows then
          Error (Errors.Type_error "ragged matrix")
        else
          Array.fold_left
            (fun acc row ->
              Array.fold_left
                (fun acc v ->
                  match acc with Error _ as err -> err | Ok () -> go e v)
                acc row)
            (Ok ()) rows
    | Domain.Tuple ds, Tuple vs ->
        if List.length ds <> List.length vs then err (Domain.to_string d) v
        else
          List.fold_left2
            (fun acc d v ->
              match acc with Error _ as e -> e | Ok () -> go d v)
            (Ok ()) ds vs
    | Domain.Ref _, Ref _ -> Ok ()
    | Domain.Named n, _ ->
        Error (Errors.Schema_error ("unexpanded named domain: " ^ n))
    | ( ( Domain.Integer | Domain.Real | Domain.Boolean | Domain.String
        | Domain.Enum _ | Domain.Record _ | Domain.List_of _ | Domain.Set_of _
        | Domain.Matrix_of _ | Domain.Tuple _ | Domain.Ref _ ),
        _ ) ->
        err (Domain.to_string d) v
  in
  go domain value
