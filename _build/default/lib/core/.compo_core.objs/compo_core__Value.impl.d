lib/core/value.ml: Array Bool Domain Errors Float Format Hashtbl Int List Printf String Surrogate
