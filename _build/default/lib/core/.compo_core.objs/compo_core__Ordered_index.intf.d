lib/core/ordered_index.mli: Errors Store Surrogate Value
