lib/core/domain.mli: Errors Format
