lib/core/schema.mli: Domain Errors Expr
