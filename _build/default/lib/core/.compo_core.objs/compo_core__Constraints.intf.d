lib/core/constraints.mli: Errors Format Store Surrogate
