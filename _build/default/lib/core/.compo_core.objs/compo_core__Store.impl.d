lib/core/store.ml: Errors Hashtbl List Map Option Printf Result Schema String Surrogate Value
