lib/core/triggers.ml: Database Errors Eval Expr Inheritance List Logs Printf Result Store String Surrogate Value
