lib/core/inheritance.ml: Errors List Option Printf Result Schema Store String Surrogate Value
