lib/core/triggers.mli: Database Errors Expr Surrogate Value
