lib/core/binary.ml: Array Buffer Bytes Char Errors Int32 Int64 Lazy List Printf Result String
