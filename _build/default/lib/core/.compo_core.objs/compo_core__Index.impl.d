lib/core/index.ml: Errors Hashtbl List Option Printf Result Schema Store Surrogate Value
