lib/core/eval.mli: Errors Expr Store Surrogate Value
