lib/core/database.mli: Composite Constraints Domain Errors Expr Schema Store Surrogate Value
