lib/core/inheritance.mli: Errors Store Surrogate Value
