lib/core/errors.ml: Format Printexc Printf
