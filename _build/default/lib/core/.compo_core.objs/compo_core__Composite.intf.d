lib/core/composite.mli: Errors Format Store Surrogate
