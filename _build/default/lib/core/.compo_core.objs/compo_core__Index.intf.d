lib/core/index.mli: Errors Store Surrogate Value
