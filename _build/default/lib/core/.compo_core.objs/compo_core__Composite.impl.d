lib/core/composite.ml: Format Inheritance List Option Result Store Surrogate
