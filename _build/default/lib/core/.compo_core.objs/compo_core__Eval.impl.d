lib/core/eval.ml: Errors Expr Float Inheritance List Map Option Printf Result Schema Store String Surrogate Value
