lib/core/constraints.ml: Errors Eval Expr Format List Option Printf Result Schema Store String Surrogate
