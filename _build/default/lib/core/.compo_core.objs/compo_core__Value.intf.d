lib/core/value.mli: Domain Errors Format Surrogate
