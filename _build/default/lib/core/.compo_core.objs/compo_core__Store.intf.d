lib/core/store.mli: Errors Map Schema Surrogate Value
