lib/core/query.mli: Errors Eval Expr Store Surrogate Value
