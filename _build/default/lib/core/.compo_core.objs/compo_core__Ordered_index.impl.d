lib/core/ordered_index.ml: Errors List Map Option Printf Result Schema Store Surrogate Value
