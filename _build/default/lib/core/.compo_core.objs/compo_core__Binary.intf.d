lib/core/binary.mli: Errors
