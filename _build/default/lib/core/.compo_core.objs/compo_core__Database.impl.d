lib/core/database.ml: Composite Constraints Domain Errors Expr Format Index Inheritance List Option Ordered_index Printf Query Result Schema Store String Surrogate Value
