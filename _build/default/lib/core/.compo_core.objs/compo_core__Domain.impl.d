lib/core/domain.ml: Errors Format List Option Result String
