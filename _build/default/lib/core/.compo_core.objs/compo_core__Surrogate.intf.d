lib/core/surrogate.mli: Format Hashtbl Map Set
