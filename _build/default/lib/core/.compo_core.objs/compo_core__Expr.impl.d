lib/core/expr.ml: Format List Option String Value
