lib/core/schema.ml: Domain Errors Expr Hashtbl List Printf Result String
