lib/core/query.ml: Errors Eval Float Inheritance List Result Store Value
