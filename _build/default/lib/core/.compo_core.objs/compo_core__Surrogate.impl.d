lib/core/surrogate.ml: Format Hashtbl Int Map Set
