type node = {
  n_object : Surrogate.t;
  n_type : string;
  n_children : (string * node list) list;
  n_component : node option;
}

let ( let* ) = Result.bind

let rec expand_at store depth s =
  let* e = Store.get store s in
  let expand_class classes acc =
    Store.Smap.fold
      (fun name members acc ->
        let* acc = acc in
        let* nodes =
          List.fold_left
            (fun acc m ->
              let* acc = acc in
              let* n = expand_at store depth m in
              Ok (n :: acc))
            (Ok []) members
        in
        Ok ((name, List.rev nodes) :: acc))
      classes acc
  in
  (* both subobject classes and subrelationship classes belong to the
     complex object's structure (section 5 hides bolts and nuts inside a
     subrelationship, and they must surface in the expansion) *)
  let* children = expand_class e.Store.subrels (expand_class e.Store.subobjs (Ok [])) in
  let* component =
    match e.Store.bound with
    | Some b when depth <> 0 ->
        let* n = expand_at store (depth - 1) b.b_transmitter in
        Ok (Some n)
    | Some _ | None -> Ok None
  in
  Ok
    {
      n_object = s;
      n_type = e.Store.type_name;
      n_children = List.rev children;
      n_component = component;
    }

let expand store ?(max_depth = -1) s = expand_at store max_depth s

let rec node_count n =
  1
  + List.fold_left
      (fun acc (_, ns) -> List.fold_left (fun a n -> a + node_count n) acc ns)
      0 n.n_children
  + (match n.n_component with Some c -> node_count c | None -> 0)

let rec components_of store s =
  let* e = Store.get store s in
  let member_components members =
    List.filter_map
      (fun m ->
        match Store.get store m with
        | Ok { Store.bound = Some b; _ } -> Some b.b_transmitter
        | Ok _ | Error _ -> None)
      members
  in
  let direct =
    Store.Smap.fold
      (fun _ members acc -> acc @ member_components members)
      e.Store.subobjs []
  in
  (* components hidden inside subrelationship objects (section 5: "bolds
     and nuts are hidden in the relationship ScrewingType") *)
  Store.Smap.fold
    (fun _ rels acc ->
      let* acc = acc in
      List.fold_left
        (fun acc r ->
          let* acc = acc in
          let* nested = components_of store r in
          Ok (acc @ nested))
        (Ok acc) rels)
    e.Store.subrels (Ok direct)

let bill_of_materials store s =
  let table = Surrogate.Tbl.create 16 in
  let add c n =
    let existing = Option.value ~default:0 (Surrogate.Tbl.find_opt table c) in
    Surrogate.Tbl.replace table c (existing + n)
  in
  (* Multiplicity flows down use paths: each use of a component re-traverses
     it, so a girder used inside a truss used three times is counted three
     times. *)
  let rec go s =
    let* comps = components_of store s in
    List.fold_left
      (fun acc c ->
        let* () = acc in
        add c 1;
        go c)
      (Ok ()) comps
  in
  let* () = go s in
  let entries = Surrogate.Tbl.fold (fun c n acc -> (c, n) :: acc) table [] in
  Ok (List.sort (fun (a, _) (b, _) -> Surrogate.compare a b) entries)

let where_used store s =
  let* inheritors = Inheritance.inheritors_of store s in
  let owners =
    List.filter_map
      (fun i ->
        match Store.get store i with
        | Ok { Store.owner = Some o; _ } -> Some o
        | Ok _ | Error _ -> None)
      inheritors
  in
  Ok (List.sort_uniq Surrogate.compare owners)

let implementations_of store s =
  let* inheritors = Inheritance.inheritors_of store s in
  Ok
    (List.filter
       (fun i ->
         match Store.get store i with
         | Ok { Store.owner = None; _ } -> true
         | Ok _ | Error _ -> false)
       inheritors)

let rec pp_node ppf n =
  Format.fprintf ppf "@[<v 2>%a : %s" Surrogate.pp n.n_object n.n_type;
  (match n.n_component with
  | Some c -> Format.fprintf ppf "@,component -> %a" pp_node c
  | None -> ());
  List.iter
    (fun (name, children) ->
      List.iter
        (fun c -> Format.fprintf ppf "@,%s: %a" name pp_node c)
        children)
    n.n_children;
  Format.fprintf ppf "@]"
