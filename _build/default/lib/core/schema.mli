(** Type definitions and the schema registry.

    Three kinds of types (paper sections 3 and 4.1):

    - {b object types} ([obj-type]) with attributes, local subobject classes,
      local subrelationship classes, and constraints;
    - {b relationship types} ([rel-type]) which additionally declare the
      participants they relate;
    - {b inheritance relationship types} ([inher-rel-type]) which declare a
      transmitter type, an (optional) inheritor type, and the {e permeability}
      — the [inheriting] clause listing which attributes and subclasses flow
      from transmitter to inheritor.

    An object type opts into being an inheritor with [inheritor-in: R]
    ("With the definition of an object type it must be explicitly stated
    that the type is an inheritor type", section 4.1).  Its {e effective}
    attribute set is then its own attributes plus the permeable part of the
    transmitter type's effective attributes, recursively — this is the
    type-level half of value inheritance (plain generalization). *)

type attr_def = { attr_name : string; attr_domain : Domain.t }
type named_constraint = { c_name : string; c_expr : Expr.t }

type card = One | Many

type participant = {
  p_name : string;
  p_card : card;  (** [Many] for [set-of object-of-type T] *)
  p_type : string option;  (** [None] admits any object *)
}

type member_type =
  | Named_type of string
  | Inline of obj_type
      (** Anonymous member type declared inline in a subclass definition
          (the paper's [SubGates: inheritor-in: ...; attributes: ...]).
          Registered under ["<owner>.<subclass>"] at definition time. *)

and subclass_def = { sc_name : string; sc_member : member_type }

and subrel_def = {
  sr_name : string;
  sr_rel_type : string;
  sr_binder : string option;
      (** Variable bound to the relationship object inside [sr_where];
          defaults to [sr_name]. *)
  sr_where : Expr.t option;
}

and obj_type = {
  ot_name : string;
  ot_inheritor_in : string option;
  ot_attrs : attr_def list;
  ot_subclasses : subclass_def list;
  ot_subrels : subrel_def list;
  ot_constraints : named_constraint list;
}

type rel_type = {
  rt_name : string;
  rt_relates : participant list;
  rt_attrs : attr_def list;
  rt_subclasses : subclass_def list;
  rt_constraints : named_constraint list;
}

type inher_rel_type = {
  it_name : string;
  it_transmitter : string;
  it_inheritor : string option;
  it_inheriting : string list;
  it_attrs : attr_def list;
  it_subclasses : subclass_def list;
      (** section 4.1: "the inheritance relationship may possess
          attributes, subobjects and constraints" — e.g. a class of
          adaptation notes attached to the link *)
  it_constraints : named_constraint list;
}

type entry =
  | Obj_type of obj_type
  | Rel_type of rel_type
  | Inher_type of inher_rel_type

type t
(** Mutable registry.  All type and domain names share checks against
    duplicate definition; object, relationship, and inheritance types share
    one namespace. *)

val create : unit -> t

val define_domain : t -> string -> Domain.t -> (unit, Errors.t) result
(** Named domains ([domain Point = ...]); expanded into structural form on
    every use, so later type definitions may refer to them by name. *)

val define_obj_type : t -> obj_type -> (unit, Errors.t) result
(** Validates and registers an object type:
    - fresh name; well-formed, expandable attribute domains;
    - attribute / subclass / subrelationship names pairwise distinct;
    - [inheritor-in] names an existing inheritance relationship type whose
      declared inheritor is compatible;
    - no own name shadows a permeable inherited name (shadowing would be an
      implicit update of inherited data, which the paper forbids);
    - inline subclass member types are registered recursively under
      ["<owner>.<subclass>"]. *)

val define_rel_type : t -> rel_type -> (unit, Errors.t) result
val define_inher_rel_type : t -> inher_rel_type -> (unit, Errors.t) result
(** The transmitter type must already exist and every [inheriting] name must
    be an effective attribute or subclass of it.  The inheritor type may be
    defined later (the paper's section 5 defines [AllOf_GirderIf] before
    [Girder]). *)

val find : t -> string -> entry option
val find_obj_type : t -> string -> (obj_type, Errors.t) result
val find_rel_type : t -> string -> (rel_type, Errors.t) result
val find_inher_rel_type : t -> string -> (inher_rel_type, Errors.t) result
val find_domain : t -> string -> Domain.t option

val expand_domain : t -> Domain.t -> (Domain.t, Errors.t) result
(** Resolve [Named] domains against the registry. *)

val entries : t -> entry list
(** All entries in definition order (for pretty-printing and the codec). *)

val domains : t -> (string * Domain.t) list

(** Where an effective feature of a type comes from. *)
type source =
  | Own
  | Via of string  (** name of the inheritance relationship type *)

val effective_attrs : t -> string -> ((attr_def * source) list, Errors.t) result
(** Own attributes plus permeable transmitter attributes, transitively.
    Works for object types and relationship types (relationships may carry
    attributes too). *)

val effective_subclasses :
  t -> string -> ((subclass_def * source) list, Errors.t) result

val attr_source : t -> string -> string -> source option
(** [attr_source t ty a]: [Some Own] if [a] is a local attribute or subclass
    of [ty], [Some (Via r)] if inherited through [r], [None] if absent. *)

val find_effective_attr : t -> string -> string -> (attr_def * source) option
(** Attribute (not subclass) lookup in the effective feature set. *)

val find_effective_subclass :
  t -> string -> string -> (subclass_def * source) option

val transmitter_chain : t -> string -> string list
(** Type names along the inheritor-in chain starting at (and excluding) the
    given type; used for cycle diagnostics and documentation. *)

val subclass_member_type : t -> subclass_def -> string
(** Resolved member type name (inline types resolve to their registered
    generated name). *)
