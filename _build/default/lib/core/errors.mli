(** Typed errors shared by all [compo_core] modules.

    Core operations return [('a, Errors.t) result]; the [or_fail] helper
    converts to the [Compo_error] exception at application boundaries. *)

type t =
  | Type_error of string
      (** A value does not conform to the domain it was checked against. *)
  | Unknown_type of string  (** Reference to an undefined type name. *)
  | Unknown_attribute of string
      (** Reference to an attribute absent from the (effective) type. *)
  | Unknown_class of string  (** Reference to an undefined class name. *)
  | Unknown_object of string  (** Dangling surrogate. *)
  | Duplicate_definition of string
      (** A type, class, or attribute name was defined twice. *)
  | Inherited_readonly of string
      (** Attempt to update inherited data in an inheritor (paper section 2:
          "The inherited data must not be updated in the inheritor"). *)
  | Constraint_violation of string
      (** A named integrity constraint evaluated to false. *)
  | Binding_cycle of string
      (** Binding would make an object transitively inherit from itself. *)
  | Invalid_binding of string
      (** Transmitter/inheritor type mismatch for an inheritance relation. *)
  | Schema_error of string  (** Ill-formed type definition. *)
  | Eval_error of string  (** Expression evaluation failure. *)
  | Delete_restricted of string
      (** Deleting a transmitter that still has bound inheritors. *)
  | Parse_error of { line : int; col : int; message : string }
      (** DDL syntax error with source position. *)
  | Lock_error of string  (** Lock manager refusal (conflict, deadlock). *)
  | Access_denied of string  (** Access-control manager refusal. *)
  | Io_error of string  (** Persistence-layer failure. *)

exception Compo_error of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val or_fail : ('a, t) result -> 'a
(** [or_fail r] returns the payload of [Ok] or raises [Compo_error]. *)

val fail : t -> ('a, t) result
(** [fail e] is [Error e]; reads better in long match arms. *)
