(** Configuration auditing: which versions does a composite use?

    Section 6: "a powerful version mechanism supports the management of
    changes (composite objects may use old versions of interfaces)" and
    section 2 raises "configuration control which is concerned with the
    problem of providing all components of an object".  This module walks
    a composite's component uses and reports, per use, the version status
    of the bound component: its graph and version, its state, whether it
    is the graph's default, and which newer stable versions exist —
    everything a release engineer needs to decide whether the
    configuration is current. *)

open Compo_core

type entry = {
  ce_use : Surrogate.t;  (** the component subobject inside the composite *)
  ce_owner : Surrogate.t;  (** the complex object holding the use *)
  ce_component : Surrogate.t;  (** the bound transmitter *)
  ce_via : string;  (** inheritance relationship type of the binding *)
  ce_stale : bool;  (** the binding is stamped for adaptation *)
  ce_version : (string * int * Version_graph.state) option;
      (** (graph, version, state) when the component is version-managed *)
  ce_is_default : bool;
      (** the component is its graph's current default version *)
  ce_newer_stable : int list;
      (** released/frozen strict descendants of the bound version *)
}

val configuration :
  Versioned.t -> Store.t -> Surrogate.t -> (entry list, Errors.t) result
(** All component uses in the composite's expansion (transitively through
    subobjects, subrelationships, and components), in traversal order. *)

val outdated : entry list -> entry list
(** Uses for which a newer stable version of the component exists. *)

val unmanaged : entry list -> entry list
(** Uses whose component is not registered in any version graph. *)

val pp_entry : Format.formatter -> entry -> unit
