(** Generic relationships: deferred selection of component versions
    (paper section 6).

    "Using generic relationships the selection of component versions is
    deferred to assembly-time, but now we need mechanisms controlling the
    selection process.  There are three principal possibilities:
    1. a component is selected by queries associated with the composite
       object (top-down selection);
    2. design objects supply a specific version as the default version
       (bottom-up selection);
    3. the selection is guided by information not included in the object
       definition (e.g. environments)."

    A generic reference names a version graph, an inheritance relationship
    type, and a policy; {!attach} resolves it and establishes the ordinary
    (static) inheritance binding; {!refresh} re-resolves later and rebinds
    if the selected version changed. *)

open Compo_core

(** Named environments: an environment pins, per version graph, the version
    to use (possibility 3, after [DiLo85]). *)
module Env_table : sig
  type t

  val create : unit -> t
  val define : t -> env:string -> unit
  val pin : t -> env:string -> graph:string -> version:int -> (unit, Errors.t) result
  val lookup : t -> env:string -> graph:string -> (int, Errors.t) result
  val environments : t -> string list
end

type policy =
  | Bottom_up  (** the graph's default version *)
  | Top_down of Expr.t
      (** latest stable version whose object satisfies the predicate *)
  | Environment of string  (** version pinned by the named environment *)

type t = { gr_graph : Version_graph.t; gr_via : string; gr_policy : policy }

val resolve :
  Store.t -> ?envs:Env_table.t -> t -> (Surrogate.t, Errors.t) result
(** The selected component object.  Top-down selection considers only
    stable ([Released]/[Frozen]) versions and prefers the most recent
    match; bottom-up requires a default to be set. *)

val attach :
  Store.t -> ?envs:Env_table.t -> inheritor:Surrogate.t -> t ->
  (Surrogate.t, Errors.t) result
(** Resolve and bind; returns the inheritance-relationship surrogate. *)

val refresh :
  Store.t -> ?envs:Env_table.t -> inheritor:Surrogate.t -> t ->
  ([ `Unchanged | `Rebound of Surrogate.t ], Errors.t) result
(** Re-resolve; if the policy now selects a different version, unbind and
    rebind to it ("incorporating new versions of components into composite
    objects"). *)
