(** Version graphs for design objects (paper section 6, elaborating the
    version model of [KSWi86]/[Wilk87] that the paper builds on).

    A graph records the versions of one design object: a derivation DAG
    ("keeping track of the design history"), alternatives ("parallel
    development of alternatives"), and a state per version ("classification
    of versions, e.g. according to their degree of correctness").

    States move forward only: [In_work] → [Released] → [Frozen].  Only
    [In_work] versions may be modified; [Released] and [Frozen] versions
    are stable enough to be used as components.  One version may be marked
    as the {e default} — the paper's bottom-up selection hands it to
    composites that use the design object through a generic relationship. *)

open Compo_core

type state = In_work | Released | Frozen

val state_to_string : state -> string

type version = {
  ver_id : int;
  ver_object : Surrogate.t;  (** the database object this version denotes *)
  ver_predecessors : int list;  (** derived-from; [] for the root *)
  ver_note : string;
}

type t

val create : name:string -> t
val name : t -> string

val add_root : t -> obj:Surrogate.t -> ?note:string -> unit -> (int, Errors.t) result
(** First version; fails if the graph already has versions. *)

val derive :
  t -> from:int list -> obj:Surrogate.t -> ?note:string -> unit -> (int, Errors.t) result
(** New version derived from existing ones (several predecessors model a
    merge).  Deriving twice from the same version creates alternatives. *)

val find : t -> int -> (version, Errors.t) result
val state_of : t -> int -> (state, Errors.t) result
val version_of_object : t -> Surrogate.t -> int option
val versions : t -> version list
(** In creation order. *)

val promote : t -> int -> state -> (unit, Errors.t) result
(** Forward-only state transition; anything else is rejected. *)

val modifiable : t -> int -> bool
(** True only for [In_work] versions. *)

val remove : t -> int -> (unit, Errors.t) result
(** Only leaf versions that are not [Frozen] may be removed. *)

val successors : t -> int -> int list
val predecessors : t -> int -> int list

val alternatives : t -> int -> int list
(** Other versions sharing at least one predecessor with the given one
    (siblings in the derivation graph). *)

val leaves : t -> int list
val history : t -> int -> (int list, Errors.t) result
(** Ancestors of a version in topological order, ending with the version
    itself — the design history the paper asks version management to keep. *)

val set_default : t -> int -> (unit, Errors.t) result
(** The default must be [Released] or [Frozen] — an unfinished version must
    not silently become a component of other designs. *)

val default_version : t -> int option
val clear_default : t -> unit

(** {1 Persistence} *)

val encode : Binary.Enc.t -> t -> unit
val decode : Binary.Dec.t -> (t, Errors.t) result
(** Binary round-trip of the whole graph (versions, states, derivation
    edges, default), used by {!Versioned.save_file}. *)
