lib/versions/config_report.mli: Compo_core Errors Format Store Surrogate Version_graph Versioned
