lib/versions/version_graph.mli: Binary Compo_core Errors Surrogate
