lib/versions/generic_ref.ml: Compo_core Errors Eval Expr Hashtbl Inheritance List Printf Result Surrogate Version_graph
