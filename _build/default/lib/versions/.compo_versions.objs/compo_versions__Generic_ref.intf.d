lib/versions/generic_ref.mli: Compo_core Errors Expr Store Surrogate Version_graph
