lib/versions/versioned.mli: Compo_core Errors Store Surrogate Value Version_graph
