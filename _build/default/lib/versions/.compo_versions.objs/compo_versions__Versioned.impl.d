lib/versions/versioned.ml: Array Binary Compo_core Errors Hashtbl In_channel Inheritance Int32 List Option Out_channel Printf Result Store String Surrogate Sys Value Version_graph
