lib/versions/version_graph.ml: Binary Compo_core Errors Int List Option Printf Result Surrogate
