lib/versions/config_report.ml: Compo_core Format Inheritance Int List Result Store String Surrogate Version_graph Versioned
