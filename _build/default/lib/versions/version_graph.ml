open Compo_core

type state = In_work | Released | Frozen

let state_to_string = function
  | In_work -> "in-work"
  | Released -> "released"
  | Frozen -> "frozen"

let state_rank = function In_work -> 0 | Released -> 1 | Frozen -> 2

type version = {
  ver_id : int;
  ver_object : Surrogate.t;
  ver_predecessors : int list;
  ver_note : string;
}

type t = {
  vg_name : string;
  mutable vg_next : int;
  mutable vg_versions : (version * state ref) list;  (* reversed creation order *)
  mutable vg_default : int option;
}

let create ~name = { vg_name = name; vg_next = 1; vg_versions = []; vg_default = None }
let name g = g.vg_name
let ( let* ) = Result.bind

let find_entry g id =
  match List.find_opt (fun (v, _) -> v.ver_id = id) g.vg_versions with
  | Some entry -> Ok entry
  | None ->
      Error
        (Errors.Unknown_object
           (Printf.sprintf "version %d of %s" id g.vg_name))

let find g id = Result.map fst (find_entry g id)
let state_of g id = Result.map (fun (_, st) -> !st) (find_entry g id)

let version_of_object g obj =
  List.find_map
    (fun (v, _) -> if Surrogate.equal v.ver_object obj then Some v.ver_id else None)
    g.vg_versions

let versions g = List.rev_map fst g.vg_versions

let fresh g ~predecessors ~obj ~note =
  let id = g.vg_next in
  g.vg_next <- id + 1;
  let v = { ver_id = id; ver_object = obj; ver_predecessors = predecessors; ver_note = note } in
  g.vg_versions <- (v, ref In_work) :: g.vg_versions;
  Ok id

let add_root g ~obj ?(note = "initial version") () =
  if g.vg_versions <> [] then
    Error (Errors.Duplicate_definition (g.vg_name ^ " already has a root version"))
  else fresh g ~predecessors:[] ~obj ~note

let derive g ~from ~obj ?(note = "") () =
  let* () =
    if from = [] then
      Error (Errors.Schema_error "derive requires at least one predecessor")
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc id ->
        let* () = acc in
        let* _ = find g id in
        Ok ())
      (Ok ()) from
  in
  let* () =
    if Option.is_some (version_of_object g obj) then
      Error
        (Errors.Duplicate_definition
           "object is already registered as a version in this graph")
    else Ok ()
  in
  fresh g ~predecessors:(List.sort_uniq Int.compare from) ~obj ~note

let promote g id target =
  let* _, st = find_entry g id in
  if state_rank target <= state_rank !st then
    Error
      (Errors.Schema_error
         (Printf.sprintf "version states move forward only (%s -> %s)"
            (state_to_string !st) (state_to_string target)))
  else begin
    st := target;
    Ok ()
  end

let modifiable g id = match state_of g id with Ok In_work -> true | _ -> false
let successors g id =
  List.filter_map
    (fun (v, _) -> if List.mem id v.ver_predecessors then Some v.ver_id else None)
    (List.rev g.vg_versions)

let predecessors g id =
  match find g id with Ok v -> v.ver_predecessors | Error _ -> []

let alternatives g id =
  match find g id with
  | Error _ -> []
  | Ok v ->
      List.filter_map
        (fun (w, _) ->
          if
            w.ver_id <> id
            && List.exists (fun p -> List.mem p v.ver_predecessors) w.ver_predecessors
          then Some w.ver_id
          else None)
        (List.rev g.vg_versions)

let leaves g =
  List.filter_map
    (fun (v, _) -> if successors g v.ver_id = [] then Some v.ver_id else None)
    (List.rev g.vg_versions)

let history g id =
  let* _ = find g id in
  (* depth-first post-order over predecessors; versions are created after
     their predecessors, so sorting ancestors by id is topological *)
  let rec ancestors acc id =
    let preds = predecessors g id in
    let acc = List.fold_left ancestors acc preds in
    if List.mem id acc then acc else acc @ [ id ]
  in
  Ok (ancestors [] id)

let remove g id =
  let* _, st = find_entry g id in
  let* () =
    if !st = Frozen then
      Error (Errors.Delete_restricted "frozen versions cannot be removed")
    else Ok ()
  in
  let* () =
    match successors g id with
    | [] -> Ok ()
    | _ -> Error (Errors.Delete_restricted "version has derived successors")
  in
  g.vg_versions <- List.filter (fun (v, _) -> v.ver_id <> id) g.vg_versions;
  if g.vg_default = Some id then g.vg_default <- None;
  Ok ()

let set_default g id =
  let* st = state_of g id in
  match st with
  | In_work ->
      Error
        (Errors.Schema_error
           "an in-work version cannot be the default component version")
  | Released | Frozen ->
      g.vg_default <- Some id;
      Ok ()

let default_version g = g.vg_default
let clear_default g = g.vg_default <- None

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)

let state_tag = function In_work -> 0 | Released -> 1 | Frozen -> 2

let state_of_tag = function
  | 0 -> Ok In_work
  | 1 -> Ok Released
  | 2 -> Ok Frozen
  | t -> Error (Errors.Io_error (Printf.sprintf "bad version state tag %d" t))

let encode b g =
  Binary.Enc.string b g.vg_name;
  Binary.Enc.int b g.vg_next;
  Binary.Enc.option b (Binary.Enc.int b) g.vg_default;
  Binary.Enc.list b
    (fun (v, st) ->
      Binary.Enc.int b v.ver_id;
      Binary.Enc.int b (Surrogate.to_int v.ver_object);
      Binary.Enc.list b (Binary.Enc.int b) v.ver_predecessors;
      Binary.Enc.string b v.ver_note;
      Binary.Enc.byte b (state_tag !st))
    (List.rev g.vg_versions)

let decode d =
  let* name = Binary.Dec.string d in
  let* next = Binary.Dec.int d in
  let* default = Binary.Dec.option d (fun () -> Binary.Dec.int d) in
  let* versions =
    Binary.Dec.list d (fun () ->
        let* id = Binary.Dec.int d in
        let* obj = Binary.Dec.int d in
        let* preds = Binary.Dec.list d (fun () -> Binary.Dec.int d) in
        let* note = Binary.Dec.string d in
        let* st_tag = Binary.Dec.byte d in
        let* st = state_of_tag st_tag in
        Ok
          ( {
              ver_id = id;
              ver_object = Surrogate.of_int obj;
              ver_predecessors = preds;
              ver_note = note;
            },
            ref st ))
  in
  Ok
    {
      vg_name = name;
      vg_next = next;
      vg_versions = List.rev versions;
      vg_default = default;
    }
