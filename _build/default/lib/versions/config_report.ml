open Compo_core

let ( let* ) = Result.bind

type entry = {
  ce_use : Surrogate.t;
  ce_owner : Surrogate.t;
  ce_component : Surrogate.t;
  ce_via : string;
  ce_stale : bool;
  ce_version : (string * int * Version_graph.state) option;
  ce_is_default : bool;
  ce_newer_stable : int list;
}

let stable_descendants g id =
  (* strict descendants in Released/Frozen state, by BFS over successors *)
  let rec go acc frontier =
    match frontier with
    | [] -> List.sort_uniq Int.compare acc
    | v :: rest ->
        let succs = Version_graph.successors g v in
        let fresh = List.filter (fun s -> not (List.mem s acc)) succs in
        let stable =
          List.filter
            (fun s ->
              match Version_graph.state_of g s with
              | Ok (Version_graph.Released | Version_graph.Frozen) -> true
              | Ok Version_graph.In_work | Error _ -> false)
            fresh
        in
        go (stable @ acc) (fresh @ rest)
  in
  go [] [ id ]

let entry_of_use reg store ~owner use (b : Store.binding) =
  let stale =
    match Inheritance.is_stale store b.Store.b_link with
    | Ok s -> s
    | Error _ -> false
  in
  match Versioned.graph_of_object reg b.Store.b_transmitter with
  | None ->
      {
        ce_use = use;
        ce_owner = owner;
        ce_component = b.Store.b_transmitter;
        ce_via = b.Store.b_via;
        ce_stale = stale;
        ce_version = None;
        ce_is_default = false;
        ce_newer_stable = [];
      }
  | Some (g, id) ->
      let state =
        match Version_graph.state_of g id with
        | Ok st -> st
        | Error _ -> Version_graph.In_work
      in
      {
        ce_use = use;
        ce_owner = owner;
        ce_component = b.Store.b_transmitter;
        ce_via = b.Store.b_via;
        ce_stale = stale;
        ce_version = Some (Version_graph.name g, id, state);
        ce_is_default = Version_graph.default_version g = Some id;
        ce_newer_stable = stable_descendants g id;
      }

let configuration reg store root =
  let seen = ref Surrogate.Set.empty in
  let entries = ref [] in
  let rec go ~owner s =
    if not (Surrogate.Set.mem s !seen) then begin
      seen := Surrogate.Set.add s !seen;
      match Store.get store s with
      | Error _ -> ()
      | Ok e ->
          (match e.Store.bound with
          | Some b when not (Surrogate.equal s root) ->
              entries := entry_of_use reg store ~owner s b :: !entries;
              go ~owner:s b.Store.b_transmitter
          | Some _ | None -> ());
          Store.Smap.iter (fun _ ms -> List.iter (go ~owner:s) ms) e.Store.subobjs;
          Store.Smap.iter (fun _ ms -> List.iter (go ~owner:s) ms) e.Store.subrels
    end
  in
  let* _ = Store.get store root in
  go ~owner:root root;
  Ok (List.rev !entries)

let outdated entries = List.filter (fun e -> e.ce_newer_stable <> []) entries
let unmanaged entries = List.filter (fun e -> e.ce_version = None) entries

let pp_entry ppf e =
  Format.fprintf ppf "%a uses %a via %s" Surrogate.pp e.ce_use Surrogate.pp
    e.ce_component e.ce_via;
  (match e.ce_version with
  | Some (g, v, st) ->
      Format.fprintf ppf " [%s v%d %s%s]" g v
        (Version_graph.state_to_string st)
        (if e.ce_is_default then ", default" else "")
  | None -> Format.fprintf ppf " [unmanaged]");
  if e.ce_newer_stable <> [] then
    Format.fprintf ppf " newer: %s"
      (String.concat "," (List.map string_of_int e.ce_newer_stable));
  if e.ce_stale then Format.fprintf ppf " STALE"
