(** Integration of version graphs with the object store.

    "The implementations of an interface can be seen as the versions of a
    design object which is represented by the interface" (section 6).  This
    module maintains a registry of version graphs over store objects and
    implements version derivation by deep copy: deriving a new version of a
    design object clones its attributes, subobject tree, subrelationships,
    and inheritance bindings, then registers the clone as an [In_work]
    version.

    "Versioned versions": a graph can be created over interface objects
    whose own implementations are tracked in further graphs, giving the
    abstraction hierarchies of section 4.2 a version dimension. *)

open Compo_core

type t
(** Registry of version graphs, keyed by graph name. *)

val create : unit -> t
val new_graph : t -> name:string -> (Version_graph.t, Errors.t) result
val graph : t -> string -> (Version_graph.t, Errors.t) result
val graphs : t -> string list

val graph_of_object : t -> Surrogate.t -> (Version_graph.t * int) option
(** The graph and version id an object is registered under, if any. *)

val clone_object :
  ?classes:bool -> Store.t -> Surrogate.t -> (Surrogate.t, Errors.t) result
(** Deep copy: local attributes, subobject tree, subrelationships (with
    participants re-mapped into the clone), and inheritance bindings (the
    clone inherits from the same transmitters).  Top-level class
    memberships are copied when [classes] (default true); private
    workspace copies pass [~classes:false] to stay out of public
    extents. *)

val clone_object_mapped :
  ?classes:bool -> Store.t -> Surrogate.t ->
  (Surrogate.t * (Surrogate.t * Surrogate.t) list, Errors.t) result
(** Like {!clone_object} but also returns the original→copy surrogate
    mapping over the whole cloned tree (used by {!Compo_workspace} to diff
    at check-in time). *)

val register_root :
  t -> graph:string -> obj:Surrogate.t -> (int, Errors.t) result

val derive_version :
  t -> Store.t -> graph:string -> from:int -> (int * Surrogate.t, Errors.t) result
(** Clone the object of version [from] and register the clone as a new
    [In_work] version derived from it.  Returns (version id, clone). *)

val set_attr :
  t -> Store.t -> Surrogate.t -> string -> Value.t -> (unit, Errors.t) result
(** Guarded write: rejected when the object is registered as a version that
    is no longer [In_work] (released and frozen versions are immutable). *)

val promote : t -> graph:string -> version:int -> Version_graph.state -> (unit, Errors.t) result
val set_default : t -> graph:string -> version:int -> (unit, Errors.t) result

(** {1 Persistence}

    Version graphs reference store objects by surrogate, so a registry
    saved next to a database snapshot stays consistent with it (the
    journal's surrogates are stable across recovery). *)

val encode : t -> string
val decode : string -> (t, Errors.t) result

val save_file : t -> string -> (unit, Errors.t) result
(** Checksummed, written atomically via a temporary file. *)

val load_file : string -> (t, Errors.t) result
