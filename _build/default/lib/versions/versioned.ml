open Compo_core

let ( let* ) = Result.bind

type t = (string, Version_graph.t) Hashtbl.t

let create () : t = Hashtbl.create 16

let new_graph t ~name =
  if Hashtbl.mem t name then
    Error (Errors.Duplicate_definition ("version graph " ^ name))
  else begin
    let g = Version_graph.create ~name in
    Hashtbl.replace t name g;
    Ok g
  end

let graph t name =
  match Hashtbl.find_opt t name with
  | Some g -> Ok g
  | None -> Error (Errors.Unknown_class ("version graph " ^ name))

let graphs t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let graph_of_object t obj =
  Hashtbl.fold
    (fun _ g acc ->
      match acc with
      | Some _ -> acc
      | None -> (
          match Version_graph.version_of_object g obj with
          | Some id -> Some (g, id)
          | None -> None))
    t None

(* ------------------------------------------------------------------ *)
(* Deep copy                                                           *)

let entity_attr_list (e : Store.entity) =
  Store.Smap.fold (fun n v acc -> (n, v) :: acc) e.Store.attrs []

(* Clone the containment tree, filling [mapping] with old -> new. *)
let rec clone_tree store mapping src =
  let* e = Store.get store src in
  let* copy = Store.create_object store ~ty:e.Store.type_name (entity_attr_list e) in
  Surrogate.Tbl.replace mapping src copy;
  let* () =
    Store.Smap.fold
      (fun subclass members acc ->
        let* () = acc in
        List.fold_left
          (fun acc m ->
            let* () = acc in
            clone_subobject store mapping ~parent:copy ~subclass m)
          (Ok ()) members)
      e.Store.subobjs (Ok ())
  in
  Ok copy

and clone_subobject store mapping ~parent ~subclass src =
  let* e = Store.get store src in
  let* copy =
    Store.create_subobject store ~parent ~subclass (entity_attr_list e)
  in
  Surrogate.Tbl.replace mapping src copy;
  Store.Smap.fold
    (fun subclass members acc ->
      let* () = acc in
      List.fold_left
        (fun acc m ->
          let* () = acc in
          clone_subobject store mapping ~parent:copy ~subclass m)
        (Ok ()) members)
    e.Store.subobjs (Ok ())

let map_value mapping v =
  let rec go v =
    match v with
    | Value.Ref s -> (
        match Surrogate.Tbl.find_opt mapping s with
        | Some s' -> Value.Ref s'
        | None -> v)
    | Value.Record fields -> Value.Record (List.map (fun (n, v) -> (n, go v)) fields)
    | Value.List vs -> Value.List (List.map go vs)
    | Value.Set vs -> Value.set (List.map go vs)
    | Value.Tuple vs -> Value.Tuple (List.map go vs)
    | Value.Matrix rows -> Value.Matrix (Array.map (Array.map go) rows)
    | Value.Int _ | Value.Real _ | Value.Bool _ | Value.Str _
    | Value.Enum_case _ | Value.Null ->
        v
  in
  go v

(* Second pass: bindings and subrelationships, with internal references
   re-mapped into the clone. *)
let rec clone_links store mapping src =
  let* e = Store.get store src in
  let copy = Surrogate.Tbl.find mapping src in
  let* () =
    match e.Store.bound with
    | None -> Ok ()
    | Some b ->
        let transmitter =
          Option.value ~default:b.Store.b_transmitter
            (Surrogate.Tbl.find_opt mapping b.Store.b_transmitter)
        in
        let* _ =
          Inheritance.bind store ~via:b.Store.b_via ~transmitter ~inheritor:copy ()
        in
        Ok ()
  in
  let* () =
    Store.Smap.fold
      (fun subrel members acc ->
        let* () = acc in
        List.fold_left
          (fun acc r ->
            let* () = acc in
            let* re = Store.get store r in
            let participants =
              Store.Smap.fold
                (fun n v acc -> (n, map_value mapping v) :: acc)
                re.Store.participants []
            in
            let* copy_rel =
              Store.create_subrel store ~parent:copy ~subrel ~participants
                ~attrs:(entity_attr_list re) ()
            in
            Surrogate.Tbl.replace mapping r copy_rel;
            (* relationship objects may hold inheritor subobjects of their
               own (section 5's Bolt/Nut); clone those too *)
            Store.Smap.fold
              (fun subclass members acc ->
                let* () = acc in
                List.fold_left
                  (fun acc m ->
                    let* () = acc in
                    let* () =
                      clone_subobject store mapping ~parent:copy_rel ~subclass m
                    in
                    clone_links store mapping m)
                  (Ok ()) members)
              re.Store.subobjs (Ok ()))
          (Ok ()) members)
      e.Store.subrels (Ok ())
  in
  Store.Smap.fold
    (fun _ members acc ->
      let* () = acc in
      List.fold_left
        (fun acc m ->
          let* () = acc in
          clone_links store mapping m)
        (Ok ()) members)
    e.Store.subobjs (Ok ())

let clone_object_mapped ?(classes = true) store src =
  let mapping = Surrogate.Tbl.create 64 in
  let* copy = clone_tree store mapping src in
  let* () = clone_links store mapping src in
  let* e = Store.get store src in
  let* () =
    if not classes then Ok ()
    else
      List.fold_left
        (fun acc cls ->
          let* () = acc in
          Store.insert_into_class store ~cls copy)
        (Ok ()) e.Store.classes_of
  in
  let pairs = Surrogate.Tbl.fold (fun o c acc -> (o, c) :: acc) mapping [] in
  Ok (copy, List.sort (fun (a, _) (b, _) -> Surrogate.compare a b) pairs)

let clone_object ?classes store src =
  Result.map fst (clone_object_mapped ?classes store src)

(* ------------------------------------------------------------------ *)
(* Versions over store objects                                         *)

let register_root t ~graph:gname ~obj =
  let* g = graph t gname in
  Version_graph.add_root g ~obj ()

let derive_version t store ~graph:gname ~from =
  let* g = graph t gname in
  let* v = Version_graph.find g from in
  let* copy = clone_object store v.Version_graph.ver_object in
  let* id =
    Version_graph.derive g ~from:[ from ] ~obj:copy
      ~note:(Printf.sprintf "derived from version %d" from)
      ()
  in
  Ok (id, copy)

let set_attr t store s name value =
  match graph_of_object t s with
  | Some (g, id) when not (Version_graph.modifiable g id) ->
      let state =
        match Version_graph.state_of g id with
        | Ok st -> Version_graph.state_to_string st
        | Error _ -> "unknown"
      in
      Error
        (Errors.Schema_error
           (Printf.sprintf "version %d of %s is %s and immutable" id
              (Version_graph.name g) state))
  | Some _ | None -> Inheritance.set_attr store s name value

let promote t ~graph:gname ~version state =
  let* g = graph t gname in
  Version_graph.promote g version state

let set_default t ~graph:gname ~version =
  let* g = graph t gname in
  Version_graph.set_default g version

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)

let magic = "COMPO-VERSIONS-1"

let encode t =
  let b = Binary.Enc.create () in
  let graphs =
    List.sort
      (fun a b -> String.compare (Version_graph.name a) (Version_graph.name b))
      (Hashtbl.fold (fun _ g acc -> g :: acc) t [])
  in
  Binary.Enc.list b (Version_graph.encode b) graphs;
  let body = Binary.Enc.contents b in
  let frame = Binary.Enc.create () in
  Binary.Enc.string frame magic;
  Binary.Enc.int frame (Int32.to_int (Binary.crc32 body) land 0xFFFFFFFF);
  Binary.Enc.string frame body;
  Binary.Enc.contents frame

let decode blob =
  let d = Binary.Dec.of_string blob in
  let* found = Binary.Dec.string d in
  let* () =
    if String.equal found magic then Ok ()
    else Error (Errors.Io_error "not a compo version registry")
  in
  let* crc = Binary.Dec.int d in
  let* body = Binary.Dec.string d in
  let* () =
    if Int32.to_int (Binary.crc32 body) land 0xFFFFFFFF = crc then Ok ()
    else Error (Errors.Io_error "version registry checksum mismatch")
  in
  let inner = Binary.Dec.of_string body in
  let* graphs = Binary.Dec.list inner (fun () -> Version_graph.decode inner) in
  let t = create () in
  let* () =
    List.fold_left
      (fun acc g ->
        let* () = acc in
        if Hashtbl.mem t (Version_graph.name g) then
          Error (Errors.Io_error ("duplicate graph " ^ Version_graph.name g))
        else begin
          Hashtbl.replace t (Version_graph.name g) g;
          Ok ()
        end)
      (Ok ()) graphs
  in
  Ok t

let save_file t path =
  let tmp = path ^ ".tmp" in
  match
    Out_channel.with_open_bin tmp (fun c -> Out_channel.output_string c (encode t));
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Errors.Io_error msg)

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> decode contents
  | exception Sys_error msg -> Error (Errors.Io_error msg)
