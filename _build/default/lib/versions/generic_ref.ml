open Compo_core

let ( let* ) = Result.bind

module Env_table = struct
  type t = (string, (string, int) Hashtbl.t) Hashtbl.t

  let create () : t = Hashtbl.create 8
  let define t ~env =
    if not (Hashtbl.mem t env) then Hashtbl.replace t env (Hashtbl.create 8)

  let pin t ~env ~graph ~version =
    match Hashtbl.find_opt t env with
    | None -> Error (Errors.Unknown_class ("environment " ^ env))
    | Some bindings ->
        Hashtbl.replace bindings graph version;
        Ok ()

  let lookup t ~env ~graph =
    match Hashtbl.find_opt t env with
    | None -> Error (Errors.Unknown_class ("environment " ^ env))
    | Some bindings -> (
        match Hashtbl.find_opt bindings graph with
        | Some v -> Ok v
        | None ->
            Error
              (Errors.Unknown_object
                 (Printf.sprintf "environment %s pins no version of %s" env graph)))

  let environments t = Hashtbl.fold (fun k _ acc -> k :: acc) t []
end

type policy = Bottom_up | Top_down of Expr.t | Environment of string
type t = { gr_graph : Version_graph.t; gr_via : string; gr_policy : policy }

let stable_versions g =
  List.filter
    (fun v ->
      match Version_graph.state_of g v.Version_graph.ver_id with
      | Ok (Version_graph.Released | Version_graph.Frozen) -> true
      | Ok Version_graph.In_work | Error _ -> false)
    (Version_graph.versions g)

let resolve store ?envs gref =
  let g = gref.gr_graph in
  match gref.gr_policy with
  | Bottom_up -> (
      match Version_graph.default_version g with
      | Some id ->
          let* v = Version_graph.find g id in
          Ok v.Version_graph.ver_object
      | None ->
          Error
            (Errors.Unknown_object
               (Version_graph.name g ^ " supplies no default version")))
  | Environment env_name -> (
      match envs with
      | None -> Error (Errors.Unknown_class "no environment table supplied")
      | Some envs ->
          let* id =
            Env_table.lookup envs ~env:env_name ~graph:(Version_graph.name g)
          in
          let* v = Version_graph.find g id in
          Ok v.Version_graph.ver_object)
  | Top_down pred -> (
      (* latest stable version whose object satisfies the predicate *)
      let candidates = List.rev (stable_versions g) in
      let matching =
        List.find_opt
          (fun v ->
            match
              Eval.eval_bool
                (Eval.env ~self:v.Version_graph.ver_object store)
                pred
            with
            | Ok b -> b
            | Error _ -> false)
          candidates
      in
      match matching with
      | Some v -> Ok v.Version_graph.ver_object
      | None ->
          Error
            (Errors.Unknown_object
               (Printf.sprintf "no stable version of %s satisfies %s"
                  (Version_graph.name g) (Expr.to_string pred))))

let attach store ?envs ~inheritor gref =
  let* transmitter = resolve store ?envs gref in
  Inheritance.bind store ~via:gref.gr_via ~transmitter ~inheritor ()

let refresh store ?envs ~inheritor gref =
  let* selected = resolve store ?envs gref in
  let* current = Inheritance.transmitter_of store inheritor in
  match current with
  | Some t when Surrogate.equal t selected -> Ok `Unchanged
  | Some _ ->
      let* () = Inheritance.unbind store inheritor in
      let* link =
        Inheritance.bind store ~via:gref.gr_via ~transmitter:selected ~inheritor ()
      in
      Ok (`Rebound link)
  | None ->
      let* link =
        Inheritance.bind store ~via:gref.gr_via ~transmitter:selected ~inheritor ()
      in
      Ok (`Rebound link)
