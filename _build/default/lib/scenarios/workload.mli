(** Synthetic workload generators for benchmarks and stress tests.

    The paper reports no measurements, so these generators produce
    parameterised instances of the paper's modelling patterns (interfaces
    with many implementations, deep inheritance chains, component trees,
    random netlists, screwed structures) whose scaling behaviour the
    benchmark harness measures.  All generators are deterministic given
    [seed]. *)

open Compo_core

val interface_with_inheritors :
  Database.t -> n:int -> (Surrogate.t * Surrogate.t list, Errors.t) result
(** One [GateInterface] (with pin interface) and [n] implementations bound
    to it.  Requires {!Gates.define_schema}. *)

val chain_schema : Database.t -> depth:int -> (unit, Errors.t) result
(** Types [Node0 .. Node<depth>] where [Node<k+1>] is inheritor-in
    [AllOf_Node<k>]; a [Payload] attribute defined on [Node0] is permeable
    through every level.  Self-contained (does not need the gate schema). *)

val chain_instance :
  Database.t -> depth:int -> payload:int -> (Surrogate.t list, Errors.t) result
(** One object per level, each bound to the previous; returns the objects
    from [Node0] to [Node<depth>].  Reading [Payload] on the last object
    resolves through [depth] hops. *)

val composite_schema : Database.t -> depth:int -> (unit, Errors.t) result
(** Types [Comp0 .. Comp<depth>]: each [Comp<k+1>] holds a [Parts] subclass
    whose members are inheritors-in [AllOf_Comp<k>] — the paper's component
    pattern, stacked [depth] levels deep.  Self-contained. *)

val component_tree :
  Database.t -> depth:int -> fanout:int -> (Surrogate.t, Errors.t) result
(** A component tree over {!composite_schema}: one object per inner node
    with [fanout] component uses of distinct level-below objects; leaves
    are [Comp0] objects carrying a [Payload].  Returns the top object; its
    expansion has Θ(fanout^depth) nodes.  Requires
    [composite_schema ~depth] (installed on demand if missing). *)

val random_netlist :
  Database.t -> seed:int -> gates:int -> (Surrogate.t, Errors.t) result
(** A [Gate] complex object with [gates] random elementary subgates and a
    random wire between gate pins per subgate.  Requires
    {!Gates.define_schema}. *)

val screwed_structure :
  Database.t -> girders:int -> bores_per_joint:int -> (Surrogate.t, Errors.t) result
(** A weight-carrying structure with [girders] girder components joined
    pairwise by screwings over [bores_per_joint] bores, with consistent
    bolt/nut dimensions.  Requires {!Steel.define_schema}. *)
