lib/scenarios/optimize.ml: Compo_core Database Errors Hashtbl List Option Printf Result Store String Surrogate Value
