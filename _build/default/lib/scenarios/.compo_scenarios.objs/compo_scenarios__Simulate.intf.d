lib/scenarios/simulate.mli: Compo_core Database Errors Surrogate
