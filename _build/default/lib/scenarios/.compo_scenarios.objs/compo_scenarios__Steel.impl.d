lib/scenarios/steel.ml: Compo_core Database Domain Expr List Result Schema Value
