lib/scenarios/gates.ml: Compo_core Database Domain Errors Expr List Printf Result Schema Surrogate Value
