lib/scenarios/workload.mli: Compo_core Database Errors Surrogate
