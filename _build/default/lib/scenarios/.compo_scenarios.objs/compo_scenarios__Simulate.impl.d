lib/scenarios/simulate.ml: Compo_core Database Errors List Option Printf Result Store Surrogate Value
