lib/scenarios/gates.mli: Compo_core Database Errors Surrogate Value
