lib/scenarios/steel.mli: Compo_core Database Errors Surrogate
