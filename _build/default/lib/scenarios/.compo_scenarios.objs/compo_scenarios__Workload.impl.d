lib/scenarios/workload.ml: Array Compo_core Database Domain Gates List Printf Random Result Schema Steel Value
