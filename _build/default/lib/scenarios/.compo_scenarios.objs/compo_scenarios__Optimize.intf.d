lib/scenarios/optimize.mli: Compo_core Database Errors Surrogate
