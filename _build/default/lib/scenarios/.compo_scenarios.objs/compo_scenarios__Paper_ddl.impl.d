lib/scenarios/paper_ddl.ml:
