open Compo_core

let ( let* ) = Result.bind

type stats = {
  removed_gates : int;
  merged_gates : int;
  removed_wires : int;
  passes : int;
}

(* A wire endpoint is a driver if it is an external IN pin of the top
   gate or the OUT pin of a subgate (mirrors Simulate's orientation). *)
let is_driver db ~top pin =
  let* io = Database.get_attr db pin "InOut" in
  let* owner = Store.owner_of (Database.store db) pin in
  let is_top = match owner with Some o -> Surrogate.equal o top | None -> false in
  match io with
  | Value.Enum_case "IN" -> Ok is_top
  | Value.Enum_case "OUT" -> Ok (not is_top)
  | v ->
      Error
        (Errors.Schema_error
           (Printf.sprintf "pin %s has no valid InOut (%s)"
              (Surrogate.to_string pin) (Value.to_string v)))

let wire_pins db wire =
  let* p1 = Database.participant db wire "Pin1" in
  let* p2 = Database.participant db wire "Pin2" in
  match (Value.as_ref p1, Value.as_ref p2) with
  | Some a, Some b -> Ok (a, b)
  | _ -> Error (Errors.Schema_error "wire with non-reference endpoints")

(* driver pin of a wire, with the participant slot it occupies *)
let wire_driver db ~top wire =
  let* a, b = wire_pins db wire in
  let* da = is_driver db ~top a in
  let* db_ = is_driver db ~top b in
  match (da, db_) with
  | true, false -> Ok (a, "Pin1")
  | false, true -> Ok (b, "Pin2")
  | _ ->
      Error
        (Errors.Schema_error
           (Printf.sprintf "wire %s is not properly oriented"
              (Surrogate.to_string wire)))

let out_pin db sub =
  let* pins = Database.subclass_members db sub "Pins" in
  let* outs =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* io = Database.get_attr db p "InOut" in
        match io with Value.Enum_case "OUT" -> Ok (p :: acc) | _ -> Ok acc)
      (Ok []) pins
  in
  match outs with
  | [ out ] -> Ok out
  | _ ->
      Error
        (Errors.Schema_error
           (Printf.sprintf "subgate %s must have exactly one output"
              (Surrogate.to_string sub)))

let eliminate_dead db ~gate =
  let* subs = Database.subclass_members db gate "SubGates" in
  let* wires = Database.subrel_members db gate "Wires" in
  let* drivers =
    List.fold_left
      (fun acc w ->
        let* acc = acc in
        let* d, _slot = wire_driver db ~top:gate w in
        Ok (d :: acc))
      (Ok []) wires
  in
  let* dead =
    List.fold_left
      (fun acc sub ->
        let* acc = acc in
        let* out = out_pin db sub in
        if List.exists (Surrogate.equal out) drivers then Ok acc
        else Ok (sub :: acc))
      (Ok []) subs
  in
  let wires_before = List.length wires in
  let* () =
    List.fold_left
      (fun acc sub ->
        let* () = acc in
        (* force: the subgate's pins participate in incoming wires, which
           die with it *)
        Database.delete db ~force:true sub)
      (Ok ()) dead
  in
  let* wires_after = Database.subrel_members db gate "Wires" in
  Ok (List.length dead, wires_before - List.length wires_after)

(* Key of a subgate: its function plus the sorted drivers of its inputs.
   Only fully-driven gates participate (a floating input means we cannot
   prove equivalence). *)
let subgate_key db ~gate sub =
  let* func = Database.get_attr db sub "Function" in
  let* pins = Database.subclass_members db sub "Pins" in
  let* wires = Database.subrel_members db gate "Wires" in
  let* sources =
    List.fold_left
      (fun acc pin ->
        let* acc = acc in
        let* io = Database.get_attr db pin "InOut" in
        match io with
        | Value.Enum_case "IN" ->
            let* source =
              List.fold_left
                (fun acc w ->
                  let* acc = acc in
                  let* a, b = wire_pins db w in
                  let* d, slot = wire_driver db ~top:gate w in
                  let sink = if String.equal slot "Pin1" then b else a in
                  if Surrogate.equal sink pin then Ok (Some d) else Ok acc)
                (Ok None) wires
            in
            (match source with
            | Some src -> Ok (Option.map (fun l -> src :: l) acc)
            | None -> Ok None (* floating input *))
        | _ -> Ok acc)
      (Ok (Some [])) pins
  in
  match sources with
  | None -> Ok None
  | Some srcs ->
      Ok
        (Some
           ( Value.to_string func,
             List.map Surrogate.to_int (List.sort Surrogate.compare srcs) ))

let merge_duplicates db ~gate =
  let* subs = Database.subclass_members db gate "SubGates" in
  let* keyed =
    List.fold_left
      (fun acc sub ->
        let* acc = acc in
        let* key = subgate_key db ~gate sub in
        match key with Some k -> Ok ((k, sub) :: acc) | None -> Ok acc)
      (Ok []) subs
  in
  let keyed = List.rev keyed in
  (* group by key, keeping first occurrence as the survivor *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (k, sub) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups k) in
      Hashtbl.replace groups k (existing @ [ sub ]))
    keyed;
  let store = Database.store db in
  Hashtbl.fold
    (fun _ group acc ->
      let* merged = acc in
      match group with
      | [] | [ _ ] -> Ok merged
      | survivor :: duplicates ->
          let* survivor_out = out_pin db survivor in
          List.fold_left
            (fun acc dup ->
              let* merged = acc in
              let* dup_out = out_pin db dup in
              (* rewire every wire driven by the duplicate's output *)
              let* wires = Database.subrel_members db gate "Wires" in
              let* () =
                List.fold_left
                  (fun acc w ->
                    let* () = acc in
                    let* d, slot = wire_driver db ~top:gate w in
                    if Surrogate.equal d dup_out then
                      Store.set_participant store w slot (Value.Ref survivor_out)
                    else Ok ())
                  (Ok ()) wires
              in
              Ok (merged + 1))
            (Ok merged) duplicates)
    groups (Ok 0)

let optimize db ~gate =
  let rec go acc =
    let* merged = merge_duplicates db ~gate in
    let* removed, wires = eliminate_dead db ~gate in
    let acc =
      {
        removed_gates = acc.removed_gates + removed;
        merged_gates = acc.merged_gates + merged;
        removed_wires = acc.removed_wires + wires;
        passes = acc.passes + 1;
      }
    in
    if merged = 0 && removed = 0 then Ok acc else go acc
  in
  go { removed_gates = 0; merged_gates = 0; removed_wires = 0; passes = 0 }
