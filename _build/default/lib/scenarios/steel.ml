open Compo_core

let ( let* ) = Result.bind

let attr name domain = { Schema.attr_name = name; attr_domain = domain }
let constr name expr = { Schema.c_name = name; c_expr = expr }

let basic_part_type name =
  {
    Schema.ot_name = name;
    ot_inheritor_in = None;
    ot_attrs = [ attr "Length" Domain.Integer; attr "Diameter" Domain.Integer ];
    ot_subclasses = [];
    ot_subrels = [];
    ot_constraints = [];
  }

let define_basic_parts db =
  let* () = Database.define_obj_type db (basic_part_type "BoltType") in
  let* () = Database.define_obj_type db (basic_part_type "NutType") in
  Database.define_obj_type db
    {
      Schema.ot_name = "BoreType";
      ot_inheritor_in = None;
      ot_attrs =
        [
          attr "Diameter" Domain.Integer;
          attr "Length" Domain.Integer;
          attr "Position" (Domain.Named "Point");
        ];
      ot_subclasses = [];
      ot_subrels = [];
      ot_constraints = [];
    }

let define_interfaces db =
  let* () =
    Database.define_obj_type db
      {
        Schema.ot_name = "GirderInterface";
        ot_inheritor_in = None;
        ot_attrs =
          [
            attr "Length" Domain.Integer;
            attr "Height" Domain.Integer;
            attr "Width" Domain.Integer;
          ];
        ot_subclasses =
          [ { Schema.sc_name = "Bores"; sc_member = Schema.Named_type "BoreType" } ];
        ot_subrels = [];
        ot_constraints =
          [
            (* Length < 100 * Height * Width *)
            constr "proportions"
              Expr.(
                path [ "Length" ]
                < int 100 * path [ "Height" ] * path [ "Width" ]);
          ];
      }
  in
  Database.define_obj_type db
    {
      Schema.ot_name = "PlateInterface";
      ot_inheritor_in = None;
      ot_attrs =
        [ attr "Thickness" Domain.Integer; attr "Area" (Domain.Named "AreaDom") ];
      ot_subclasses =
        [ { Schema.sc_name = "Bores"; sc_member = Schema.Named_type "BoreType" } ];
      ot_subrels = [];
      ot_constraints = [];
    }

let inher_all name ~transmitter ~inheritor ~inheriting =
  {
    Schema.it_name = name;
    it_transmitter = transmitter;
    it_inheritor = inheritor;
    it_inheriting = inheriting;
    it_attrs = [];
         it_subclasses = [];
    it_constraints = [];
  }

let define_inheritance db =
  (* Adaptation: the paper declares [inheritor: object-of-type Girder] but
     also binds the anonymous Girders subclass of WeightCarrying_Structure
     to the same relationship; we use the open form. *)
  let* () =
    Database.define_inher_rel_type db
      (inher_all "AllOf_GirderIf" ~transmitter:"GirderInterface" ~inheritor:None
         ~inheriting:[ "Length"; "Height"; "Width"; "Bores" ])
  in
  let* () =
    Database.define_inher_rel_type db
      (inher_all "AllOf_PlateIf" ~transmitter:"PlateInterface" ~inheritor:None
         ~inheriting:[ "Thickness"; "Area"; "Bores" ])
  in
  let* () =
    Database.define_inher_rel_type db
      (inher_all "AllOf_BoltType" ~transmitter:"BoltType" ~inheritor:None
         ~inheriting:[ "Length"; "Diameter" ])
  in
  Database.define_inher_rel_type db
    (inher_all "AllOf_NutType" ~transmitter:"NutType" ~inheritor:None
       ~inheriting:[ "Length"; "Diameter" ])

let material_domain = Domain.Enum [ "wood"; "metal" ]

let define_parts db =
  let part name rel =
    {
      Schema.ot_name = name;
      ot_inheritor_in = Some rel;
      ot_attrs = [ attr "Material" material_domain ];
      ot_subclasses = [];
      ot_subrels = [];
      ot_constraints = [];
    }
  in
  let* () = Database.define_obj_type db (part "Girder" "AllOf_GirderIf") in
  Database.define_obj_type db (part "Plate" "AllOf_PlateIf")

let inheritor_subclass name rel =
  {
    Schema.sc_name = name;
    sc_member =
      Schema.Inline
        {
          Schema.ot_name = "";
          ot_inheritor_in = Some rel;
          ot_attrs = [];
          ot_subclasses = [];
          ot_subrels = [];
          ot_constraints = [];
        };
  }

let define_screwing db =
  (* Constraints of section 5, with explicit quantifier scoping. *)
  let one cls = Expr.(count [ cls ] = int 1) in
  let diameters_match =
    Expr.(
      forall
        [ ("s", [ "Bolt" ]); ("n", [ "Nut" ]) ]
        (path [ "s"; "Diameter" ] = path [ "n"; "Diameter" ]))
  in
  let bolt_fits_bores =
    Expr.(
      forall
        [ ("s", [ "Bolt" ]); ("b", [ "Bores" ]) ]
        (path [ "s"; "Diameter" ] <= path [ "b"; "Diameter" ]))
  in
  let bolt_length =
    Expr.(
      forall
        [ ("s", [ "Bolt" ]); ("n", [ "Nut" ]) ]
        (path [ "s"; "Length" ] = path [ "n"; "Length" ] + sum [ "Bores"; "Length" ]))
  in
  Database.define_rel_type db
    {
      Schema.rt_name = "ScrewingType";
      rt_relates =
        [ { Schema.p_name = "Bores"; p_card = Schema.Many; p_type = Some "BoreType" } ];
      rt_attrs = [ attr "Strength" Domain.Integer ];
      rt_subclasses =
        [
          inheritor_subclass "Bolt" "AllOf_BoltType";
          inheritor_subclass "Nut" "AllOf_NutType";
        ];
      rt_constraints =
        [
          constr "one_bolt" (one "Bolt");
          constr "one_nut" (one "Nut");
          constr "diameters_match" diameters_match;
          constr "bolt_fits_bores" bolt_fits_bores;
          constr "bolt_length" bolt_length;
        ];
    }

let define_structure db =
  let screwings_where =
    (* for x in Screwings.Bores: x in Girders.Bores or x in Plates.Bores *)
    Expr.(
      forall
        [ ("x", [ "Screwings"; "Bores" ]) ]
        (in_ (path [ "x" ]) (path [ "Girders"; "Bores" ])
        || in_ (path [ "x" ]) (path [ "Plates"; "Bores" ])))
  in
  Database.define_obj_type db
    {
      Schema.ot_name = "WeightCarrying_Structure";
      ot_inheritor_in = None;
      ot_attrs = [ attr "Designer" Domain.String; attr "Description" Domain.String ];
      ot_subclasses =
        [
          inheritor_subclass "Girders" "AllOf_GirderIf";
          inheritor_subclass "Plates" "AllOf_PlateIf";
        ];
      ot_subrels =
        [
          {
            Schema.sr_name = "Screwings";
            sr_rel_type = "ScrewingType";
            sr_binder = None;
            sr_where = Some screwings_where;
          };
        ];
      ot_constraints = [];
    }

let define_classes db =
  let cls name ty = Database.create_class db ~name ~member_type:ty in
  let* () = cls "Bolts" "BoltType" in
  let* () = cls "Nuts" "NutType" in
  let* () = cls "GirderInterfaces" "GirderInterface" in
  let* () = cls "PlateInterfaces" "PlateInterface" in
  let* () = cls "Girders" "Girder" in
  let* () = cls "Plates" "Plate" in
  cls "Structures" "WeightCarrying_Structure"

let define_schema db =
  let* () =
    (* Point may already exist if the gates scenario was installed first. *)
    match Schema.find_domain (Database.schema db) "Point" with
    | Some _ -> Ok ()
    | None ->
        Database.define_domain db "Point"
          (Domain.Record [ ("X", Domain.Integer); ("Y", Domain.Integer) ])
  in
  let* () =
    Database.define_domain db "AreaDom"
      (Domain.Record [ ("Length", Domain.Integer); ("Width", Domain.Integer) ])
  in
  let* () = define_basic_parts db in
  let* () = define_interfaces db in
  let* () = define_inheritance db in
  let* () = define_parts db in
  let* () = define_screwing db in
  let* () = define_structure db in
  define_classes db

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)

let new_part db ~cls ~ty ~length ~diameter =
  Database.new_object db ~cls ~ty
    ~attrs:[ ("Length", Value.Int length); ("Diameter", Value.Int diameter) ]
    ()

let new_bolt db ~length ~diameter =
  new_part db ~cls:"Bolts" ~ty:"BoltType" ~length ~diameter

let new_nut db ~length ~diameter =
  new_part db ~cls:"Nuts" ~ty:"NutType" ~length ~diameter

let add_bores db parent bores =
  List.fold_left
    (fun acc (diameter, length, (x, y)) ->
      let* () = acc in
      let* _ =
        Database.new_subobject db ~parent ~subclass:"Bores"
          ~attrs:
            [
              ("Diameter", Value.Int diameter);
              ("Length", Value.Int length);
              ("Position", Value.point x y);
            ]
          ()
      in
      Ok ())
    (Ok ()) bores

let new_girder_interface db ~length ~height ~width ~bores =
  let* iface =
    Database.new_object db ~cls:"GirderInterfaces" ~ty:"GirderInterface"
      ~attrs:
        [
          ("Length", Value.Int length);
          ("Height", Value.Int height);
          ("Width", Value.Int width);
        ]
      ()
  in
  let* () = add_bores db iface bores in
  Ok iface

let new_plate_interface db ~thickness ~area:(alen, awid) ~bores =
  let* iface =
    Database.new_object db ~cls:"PlateInterfaces" ~ty:"PlateInterface"
      ~attrs:
        [
          ("Thickness", Value.Int thickness);
          ( "Area",
            Value.record [ ("Length", Value.Int alen); ("Width", Value.Int awid) ] );
        ]
      ()
  in
  let* () = add_bores db iface bores in
  Ok iface

let new_bound_part db ~cls ~ty ~via ~interface ~material =
  let* part =
    Database.new_object db ~cls ~ty ~attrs:[ ("Material", Value.Enum_case material) ] ()
  in
  let* _ = Database.bind db ~via ~transmitter:interface ~inheritor:part () in
  Ok part

let new_girder db ~interface ~material =
  new_bound_part db ~cls:"Girders" ~ty:"Girder" ~via:"AllOf_GirderIf" ~interface
    ~material

let new_plate db ~interface ~material =
  new_bound_part db ~cls:"Plates" ~ty:"Plate" ~via:"AllOf_PlateIf" ~interface
    ~material

let bores_of db part = Database.subclass_members db part "Bores"

let new_structure db ~designer ~description =
  Database.new_object db ~cls:"Structures" ~ty:"WeightCarrying_Structure"
    ~attrs:
      [ ("Designer", Value.Str designer); ("Description", Value.Str description) ]
    ()

let add_component db ~structure ~subclass ~via ~interface =
  let* sub = Database.new_subobject db ~parent:structure ~subclass () in
  let* _ = Database.bind db ~via ~transmitter:interface ~inheritor:sub () in
  Ok sub

let add_girder db ~structure ~girder_interface =
  add_component db ~structure ~subclass:"Girders" ~via:"AllOf_GirderIf"
    ~interface:girder_interface

let add_plate db ~structure ~plate_interface =
  add_component db ~structure ~subclass:"Plates" ~via:"AllOf_PlateIf"
    ~interface:plate_interface

let screw db ~structure ~bores ~bolt ~nut ~strength =
  let* screwing =
    Database.new_subrel db ~parent:structure ~subrel:"Screwings"
      ~participants:
        [ ("Bores", Value.set (List.map (fun b -> Value.Ref b) bores)) ]
      ~attrs:[ ("Strength", Value.Int strength) ]
      ()
  in
  (* The bolt and nut live inside the relationship object, inheriting the
     catalog part's data ("bolds and nuts are hidden in the relationship
     ScrewingType", section 5). *)
  let* bolt_sub =
    Database.new_subobject db ~parent:screwing ~subclass:"Bolt" ()
  in
  let* _ =
    Database.bind db ~via:"AllOf_BoltType" ~transmitter:bolt ~inheritor:bolt_sub ()
  in
  let* nut_sub = Database.new_subobject db ~parent:screwing ~subclass:"Nut" () in
  let* _ =
    Database.bind db ~via:"AllOf_NutType" ~transmitter:nut ~inheritor:nut_sub ()
  in
  Ok screwing
