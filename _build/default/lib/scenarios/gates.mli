(** The paper's running example: logic gates (sections 3 and 4).

    [define_schema] installs every type the paper defines, adapted only
    where the paper's listings are internally inconsistent (adaptations are
    listed in DESIGN.md section 5 and tested in [test_ddl_paper.ml]):

    - §3: [SimpleGate], [PinType], [WireType], [ElementaryGate], [Gate];
    - §4.2: the interface hierarchy [GateInterface_I] →
      [AllOf_GateInterface_I] → [GateInterface] → [AllOf_GateInterface] →
      [GateImplementation] (composite form, with the [SubGates] subclass
      whose members inherit from component interfaces and add
      [GateLocation]);
    - §4.3: [SomeOf_Gate] (permeability including [TimeBehavior]) and a
      [TimingProbe] inheritor type exercising it.

    The builder functions construct the paper's figures: [flip_flop]
    builds Figure 1's complex object from two NOR gates. *)

open Compo_core

type io = In | Out

val io_value : io -> Value.t

val define_schema : Database.t -> (unit, Errors.t) result
(** Also creates the classes [Interfaces], [Implementations], [Gates]. *)

(** {1 Section 3 builders (self-contained complex objects)} *)

val new_simple_gate :
  Database.t -> func:string -> length:int -> width:int ->
  (Surrogate.t, Errors.t) result
(** A [SimpleGate] with the standard three pins (two [IN], one [OUT]) as
    attribute values. *)

val new_elementary_gate :
  Database.t -> ?parent:Surrogate.t * string -> func:string -> x:int -> y:int ->
  unit -> (Surrogate.t, Errors.t) result
(** An [ElementaryGate] with three [PinType] subobjects; created as a
    subobject of [parent]'s subclass when given, top-level otherwise. *)

val gate_pins : Database.t -> Surrogate.t -> (Surrogate.t list, Errors.t) result
(** The (possibly inherited) [Pins] subclass members of any gate-like
    object. *)

val pin : Database.t -> Surrogate.t -> int -> (Surrogate.t, Errors.t) result
(** [pin db gate i] is the i-th pin (0-based). *)

val wire :
  Database.t -> parent:Surrogate.t -> from_pin:Surrogate.t -> to_pin:Surrogate.t ->
  (Surrogate.t, Errors.t) result
(** Add a [Wires] subrelationship to a [Gate] or [GateImplementation]. *)

val flip_flop : Database.t -> (Surrogate.t, Errors.t) result
(** Figure 1: a [Gate] named complex object with external pins [S], [R],
    [Q], [Q'], two NOR [ElementaryGate] subobjects, and cross-coupled
    wires. *)

(** {1 Section 4 builders (interfaces, implementations, composites)} *)

val new_pin_interface : Database.t -> pins:io list -> (Surrogate.t, Errors.t) result
(** A [GateInterface_I] with the given pins. *)

val new_interface :
  Database.t -> pin_interface:Surrogate.t -> length:int -> width:int ->
  (Surrogate.t, Errors.t) result
(** A [GateInterface] bound to its pin interface ([AllOf_GateInterface_I]). *)

val new_implementation :
  Database.t -> interface:Surrogate.t -> ?time_behavior:int -> unit ->
  (Surrogate.t, Errors.t) result
(** A [GateImplementation] bound to [interface] via [AllOf_GateInterface]. *)

val use_component :
  Database.t -> composite:Surrogate.t -> component_interface:Surrogate.t ->
  x:int -> y:int -> (Surrogate.t, Errors.t) result
(** Add a [SubGates] subobject to a [GateImplementation] and bind it to the
    component's interface — Figure 3's component relationship.  Returns the
    subobject. *)

val new_timing_probe :
  Database.t -> implementation:Surrogate.t -> note:string ->
  (Surrogate.t, Errors.t) result
(** A [TimingProbe] bound to an implementation via [SomeOf_Gate]
    (section 4.3's tailored permeability, including [TimeBehavior]). *)

val nor_interface : Database.t -> (Surrogate.t, Errors.t) result
(** Interface of a basic NOR gate (2 in, 1 out, 4x2). *)

val nor_implementation :
  Database.t -> interface:Surrogate.t -> (Surrogate.t, Errors.t) result
(** Leaf implementation of NOR (its truth table, no subgates). *)
