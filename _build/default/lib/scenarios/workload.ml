open Compo_core

let ( let* ) = Result.bind

let fold_range ~n ~init f =
  let rec go acc i = if i >= n then Ok acc else
    let* acc = f acc i in
    go acc (i + 1)
  in
  go init 0

let interface_with_inheritors db ~n =
  let* iface = Gates.nor_interface db in
  let* impls =
    fold_range ~n ~init:[] (fun acc i ->
        let* impl =
          Gates.new_implementation db ~interface:iface ~time_behavior:(i + 1) ()
        in
        Ok (impl :: acc))
  in
  Ok (iface, List.rev impls)

let node_name k = "Node" ^ string_of_int k
let rel_name k = "AllOf_" ^ node_name k

let chain_schema db ~depth =
  let* () =
    Database.define_obj_type db
      {
        Schema.ot_name = node_name 0;
        ot_inheritor_in = None;
        ot_attrs = [ { Schema.attr_name = "Payload"; attr_domain = Domain.Integer } ];
        ot_subclasses = [];
        ot_subrels = [];
        ot_constraints = [];
      }
  in
  fold_range ~n:depth ~init:() (fun () k ->
      let* () =
        Database.define_inher_rel_type db
          {
            Schema.it_name = rel_name k;
            it_transmitter = node_name k;
            it_inheritor = Some (node_name (k + 1));
            it_inheriting = [ "Payload" ];
            it_attrs = [];
         it_subclasses = [];
            it_constraints = [];
          }
      in
      Database.define_obj_type db
        {
          Schema.ot_name = node_name (k + 1);
          ot_inheritor_in = Some (rel_name k);
          ot_attrs = [];
          ot_subclasses = [];
          ot_subrels = [];
          ot_constraints = [];
        })

let chain_instance db ~depth ~payload =
  let* root =
    Database.new_object db ~ty:(node_name 0)
      ~attrs:[ ("Payload", Value.Int payload) ]
      ()
  in
  let* objects =
    fold_range ~n:depth ~init:[ root ] (fun acc k ->
        let prev = List.hd acc in
        let* node = Database.new_object db ~ty:(node_name (k + 1)) () in
        let* _ =
          Database.bind db ~via:(rel_name k) ~transmitter:prev ~inheritor:node ()
        in
        Ok (node :: acc))
  in
  Ok (List.rev objects)

let comp_name k = "Comp" ^ string_of_int k
let comp_rel k = "AllOf_" ^ comp_name k

let composite_schema db ~depth =
  let* () =
    Database.define_obj_type db
      {
        Schema.ot_name = comp_name 0;
        ot_inheritor_in = None;
        ot_attrs = [ { Schema.attr_name = "Payload"; attr_domain = Domain.Integer } ];
        ot_subclasses = [];
        ot_subrels = [];
        ot_constraints = [];
      }
  in
  fold_range ~n:depth ~init:() (fun () k ->
      let* () =
        Database.define_inher_rel_type db
          {
            Schema.it_name = comp_rel k;
            it_transmitter = comp_name k;
            it_inheritor = None;
            it_inheriting = [ "Payload" ];
            it_attrs = [];
         it_subclasses = [];
            it_constraints = [];
          }
      in
      Database.define_obj_type db
        {
          Schema.ot_name = comp_name (k + 1);
          ot_inheritor_in = None;
          ot_attrs = [ { Schema.attr_name = "Payload"; attr_domain = Domain.Integer } ];
          ot_subclasses =
            [
              {
                Schema.sc_name = "Parts";
                sc_member =
                  Schema.Inline
                    {
                      Schema.ot_name = "";
                      ot_inheritor_in = Some (comp_rel k);
                      ot_attrs = [];
                      ot_subclasses = [];
                      ot_subrels = [];
                      ot_constraints = [];
                    };
              };
            ];
          ot_subrels = [];
          ot_constraints = [];
        })

let component_tree db ~depth ~fanout =
  let* () =
    match Schema.find (Database.schema db) (comp_name depth) with
    | Some _ -> Ok ()
    | None -> composite_schema db ~depth
  in
  let rec build level =
    let* node =
      Database.new_object db ~ty:(comp_name level)
        ~attrs:[ ("Payload", Value.Int level) ]
        ()
    in
    if level = 0 then Ok node
    else
      let* () =
        fold_range ~n:fanout ~init:() (fun () _ ->
            let* child = build (level - 1) in
            let* part =
              Database.new_subobject db ~parent:node ~subclass:"Parts" ()
            in
            let* _ =
              Database.bind db ~via:(comp_rel (level - 1)) ~transmitter:child
                ~inheritor:part ()
            in
            Ok ())
      in
      Ok node
  in
  build depth

let random_netlist db ~seed ~gates =
  let rng = Random.State.make [| seed |] in
  let funcs = [| "AND"; "OR"; "NOR"; "NAND" |] in
  let* g =
    Database.new_object db ~cls:"Gates" ~ty:"Gate"
      ~attrs:
        [
          ("Length", Value.Int (4 * gates));
          ("Width", Value.Int 8);
          ("Function", Value.Matrix [| [| Value.Bool true |] |]);
        ]
      ()
  in
  let* subgates =
    fold_range ~n:gates ~init:[] (fun acc i ->
        let func = funcs.(Random.State.int rng (Array.length funcs)) in
        let* sub =
          Gates.new_elementary_gate db ~parent:(g, "SubGates") ~func ~x:(4 * i)
            ~y:0 ()
        in
        Ok (sub :: acc))
  in
  let subgates = Array.of_list (List.rev subgates) in
  (* one wire per subgate: its output to a random input of a later gate
     (or of itself when alone), keeping the netlist loosely connected *)
  let* () =
    fold_range ~n:(Array.length subgates) ~init:() (fun () i ->
        let target =
          if i + 1 < Array.length subgates then
            i + 1 + Random.State.int rng (Array.length subgates - i - 1)
          else i
        in
        let* from_pin = Gates.pin db subgates.(i) 2 in
        let* to_pin =
          Gates.pin db subgates.(target) (Random.State.int rng 2)
        in
        let* _ = Gates.wire db ~parent:g ~from_pin ~to_pin in
        Ok ())
  in
  Ok g

let screwed_structure db ~girders ~bores_per_joint =
  let bore_length = 2 in
  let bores =
    List.init bores_per_joint (fun i -> (10, bore_length, (i * 5, 0)))
  in
  let* structure =
    Steel.new_structure db ~designer:"generator"
      ~description:
        (Printf.sprintf "%d girders, %d bores per joint" girders bores_per_joint)
  in
  let* components =
    fold_range ~n:girders ~init:[] (fun acc _ ->
        let* iface =
          Steel.new_girder_interface db ~length:200 ~height:10 ~width:10 ~bores
        in
        let* comp = Steel.add_girder db ~structure ~girder_interface:iface in
        Ok (comp :: acc))
  in
  let components = Array.of_list (List.rev components) in
  (* join consecutive girders: one screwing over the matching bores of both *)
  let* () =
    fold_range ~n:(max 0 (girders - 1)) ~init:() (fun () i ->
        let* bores_a = Steel.bores_of db components.(i) in
        let* bores_b = Steel.bores_of db components.(i + 1) in
        let joint_bores = bores_a @ bores_b in
        (* bolt long enough for all bores: nut length + sum of bore lengths *)
        let nut_length = 1 in
        let bolt_length =
          nut_length + (bore_length * List.length joint_bores)
        in
        let* bolt = Steel.new_bolt db ~length:bolt_length ~diameter:10 in
        let* nut = Steel.new_nut db ~length:nut_length ~diameter:10 in
        let* _ =
          Steel.screw db ~structure ~bores:joint_bores ~bolt ~nut ~strength:100
        in
        Ok ())
  in
  Ok structure
