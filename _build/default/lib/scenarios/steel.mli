(** The paper's second application example: steel construction (section 5,
    Figure 5) — weight-carrying structures assembled from plates and
    girders by means of bolts and nuts.

    [define_schema] installs the paper's listing with one documented
    adaptation: [AllOf_GirderIf] / [AllOf_PlateIf] declare [inheritor:
    object] rather than a fixed inheritor type, because the paper binds
    {e both} the [Girder] object type and the anonymous [Girders] subclass
    of [WeightCarrying_Structure] to the same relationship (see DESIGN.md,
    section 5).  The section 5 constraints on [ScrewingType] are written
    with explicit quantifier scoping:

    - exactly one bolt and one nut;
    - bolt and nut diameters match;
    - the bolt fits every bore;
    - bolt length = nut length + sum of bore lengths. *)

open Compo_core

val define_schema : Database.t -> (unit, Errors.t) result
(** Also creates the classes [Bolts], [Nuts], [GirderInterfaces],
    [PlateInterfaces], [Girders], [Plates], [Structures]. *)

(** {1 Catalog parts} *)

val new_bolt : Database.t -> length:int -> diameter:int -> (Surrogate.t, Errors.t) result
val new_nut : Database.t -> length:int -> diameter:int -> (Surrogate.t, Errors.t) result

val new_girder_interface :
  Database.t -> length:int -> height:int -> width:int ->
  bores:(int * int * (int * int)) list ->
  (Surrogate.t, Errors.t) result
(** [bores] are [(diameter, length, (x, y))] triples. *)

val new_plate_interface :
  Database.t -> thickness:int -> area:int * int ->
  bores:(int * int * (int * int)) list ->
  (Surrogate.t, Errors.t) result

val new_girder :
  Database.t -> interface:Surrogate.t -> material:string ->
  (Surrogate.t, Errors.t) result

val new_plate :
  Database.t -> interface:Surrogate.t -> material:string ->
  (Surrogate.t, Errors.t) result

val bores_of : Database.t -> Surrogate.t -> (Surrogate.t list, Errors.t) result
(** Inheritance-aware [Bores] members of an interface, girder, plate, or
    structure component. *)

(** {1 Structures} *)

val new_structure :
  Database.t -> designer:string -> description:string ->
  (Surrogate.t, Errors.t) result

val add_girder :
  Database.t -> structure:Surrogate.t -> girder_interface:Surrogate.t ->
  (Surrogate.t, Errors.t) result
(** Adds a [Girders] subobject bound to the girder's interface; returns the
    component subobject. *)

val add_plate :
  Database.t -> structure:Surrogate.t -> plate_interface:Surrogate.t ->
  (Surrogate.t, Errors.t) result

val screw :
  Database.t -> structure:Surrogate.t -> bores:Surrogate.t list ->
  bolt:Surrogate.t -> nut:Surrogate.t -> strength:int ->
  (Surrogate.t, Errors.t) result
(** Adds a [Screwings] subrelationship connecting the given bores, with a
    [Bolt]/[Nut] subobject pair bound to the catalog parts.  The where
    clause (every bore belongs to the structure's girders or plates) is
    checked on creation; the ScrewingType constraints are checked by
    [Database.validate]. *)
