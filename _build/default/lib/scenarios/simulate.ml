open Compo_core

let ( let* ) = Result.bind

type pin_role = External_in | External_out | Gate_in | Gate_out

let pin_role db ~top pin =
  let* io = Database.get_attr db pin "InOut" in
  let* owner = Store.owner_of (Database.store db) pin in
  let is_top = match owner with Some o -> Surrogate.equal o top | None -> false in
  match (io, is_top) with
  | Value.Enum_case "IN", true -> Ok External_in
  | Value.Enum_case "OUT", true -> Ok External_out
  | Value.Enum_case "IN", false -> Ok Gate_in
  | Value.Enum_case "OUT", false -> Ok Gate_out
  | v, _ ->
      Error
        (Errors.Schema_error
           (Printf.sprintf "pin %s has no valid InOut (%s)"
              (Surrogate.to_string pin) (Value.to_string v)))

let gate_function = function
  | "AND" -> Ok (fun a b -> a && b)
  | "OR" -> Ok (fun a b -> a || b)
  | "NOR" -> Ok (fun a b -> not (a || b))
  | "NAND" -> Ok (fun a b -> not (a && b))
  | other -> Error (Errors.Schema_error ("unknown gate function " ^ other))

(* One subgate: its boolean function, its (two) input pins, its output. *)
type subgate = {
  sg_fn : bool -> bool -> bool;
  sg_in : Surrogate.t list;
  sg_out : Surrogate.t;
}

let load_subgate db sub =
  let* func = Database.get_attr db sub "Function" in
  let* fn =
    match func with
    | Value.Enum_case f -> gate_function f
    | v ->
        Error
          (Errors.Schema_error
             ("subgate function is not an enumeration case: " ^ Value.to_string v))
  in
  let* pins = Database.subclass_members db sub "Pins" in
  let* ins, outs =
    List.fold_left
      (fun acc pin ->
        let* ins, outs = acc in
        let* io = Database.get_attr db pin "InOut" in
        match io with
        | Value.Enum_case "IN" -> Ok (pin :: ins, outs)
        | Value.Enum_case "OUT" -> Ok (ins, pin :: outs)
        | _ -> Ok (ins, outs))
      (Ok ([], [])) pins
  in
  match outs with
  | [ out ] -> Ok { sg_fn = fn; sg_in = List.rev ins; sg_out = out }
  | _ ->
      Error
        (Errors.Schema_error
           (Printf.sprintf "subgate %s must have exactly one output pin"
              (Surrogate.to_string sub)))

(* Oriented connections: driver pin -> sink pin. *)
let orient db ~top wire =
  let* p1 =
    Result.map (fun v -> Option.get (Value.as_ref v)) (Database.participant db wire "Pin1")
  in
  let* p2 =
    Result.map (fun v -> Option.get (Value.as_ref v)) (Database.participant db wire "Pin2")
  in
  let* r1 = pin_role db ~top p1 in
  let* r2 = pin_role db ~top p2 in
  let driver = function External_in | Gate_out -> true | External_out | Gate_in -> false in
  match (driver r1, driver r2) with
  | true, false -> Ok (p1, p2)
  | false, true -> Ok (p2, p1)
  | true, true ->
      Error
        (Errors.Schema_error
           (Printf.sprintf "wire %s connects two drivers" (Surrogate.to_string wire)))
  | false, false ->
      Error
        (Errors.Schema_error
           (Printf.sprintf "wire %s connects two sinks" (Surrogate.to_string wire)))

let simulate db ~gate ~inputs =
  let* external_pins = Database.subclass_members db gate "Pins" in
  let* ext_in, ext_out =
    List.fold_left
      (fun acc pin ->
        let* ins, outs = acc in
        let* role = pin_role db ~top:gate pin in
        match role with
        | External_in -> Ok (pin :: ins, outs)
        | External_out -> Ok (ins, pin :: outs)
        | Gate_in | Gate_out -> Ok (ins, outs))
      (Ok ([], [])) external_pins
  in
  let ext_in = List.rev ext_in and ext_out = List.rev ext_out in
  let* () =
    List.fold_left
      (fun acc pin ->
        let* () = acc in
        if List.mem_assoc pin inputs then Ok ()
        else
          Error
            (Errors.Eval_error
               (Printf.sprintf "no input value for external pin %s"
                  (Surrogate.to_string pin))))
      (Ok ()) ext_in
  in
  let* subs = Database.subclass_members db gate "SubGates" in
  let* subgates =
    List.fold_left
      (fun acc sub ->
        let* acc = acc in
        let* sg = load_subgate db sub in
        Ok (sg :: acc))
      (Ok []) subs
  in
  let* wires = Database.subrel_members db gate "Wires" in
  let* connections =
    List.fold_left
      (fun acc wire ->
        let* acc = acc in
        let* c = orient db ~top:gate wire in
        Ok (c :: acc))
      (Ok []) wires
  in
  (* fixpoint iteration over pin values *)
  let values = Surrogate.Tbl.create 64 in
  List.iter (fun (pin, v) -> Surrogate.Tbl.replace values pin v) inputs;
  let value pin = Option.value ~default:false (Surrogate.Tbl.find_opt values pin) in
  let changed = ref true in
  let assign pin v =
    if value pin <> v || not (Surrogate.Tbl.mem values pin) then begin
      Surrogate.Tbl.replace values pin v;
      changed := true
    end
  in
  let max_iterations = 4 + (2 * (List.length connections + List.length subgates)) in
  let rec run i =
    if not !changed then Ok ()
    else if i >= max_iterations then
      Error
        (Errors.Eval_error
           "netlist did not stabilize (state-holding feedback under these inputs)")
    else begin
      changed := false;
      List.iter (fun (driver, sink) -> assign sink (value driver)) connections;
      List.iter
        (fun sg ->
          let out =
            match sg.sg_in with
            | [ a; b ] -> sg.sg_fn (value a) (value b)
            | [ a ] -> sg.sg_fn (value a) (value a)
            | ins ->
                (* fold wider gates pairwise *)
                List.fold_left
                  (fun acc p -> sg.sg_fn acc (value p))
                  (match ins with p :: _ -> value p | [] -> false)
                  (match ins with _ :: rest -> rest | [] -> [])
          in
          assign sg.sg_out out)
        subgates;
      run (i + 1)
    end
  in
  let* () = run 0 in
  Ok (List.map (fun pin -> (pin, value pin)) ext_out)

let truth_table db ~gate =
  let* external_pins = Database.subclass_members db gate "Pins" in
  let* ext_in =
    List.fold_left
      (fun acc pin ->
        let* ins = acc in
        let* role = pin_role db ~top:gate pin in
        match role with
        | External_in -> Ok (pin :: ins)
        | External_out | Gate_in | Gate_out -> Ok ins)
      (Ok []) external_pins
  in
  let ext_in = List.rev ext_in in
  let n = List.length ext_in in
  let rows = int_of_float (2. ** float_of_int n) in
  let rec collect acc row =
    if row >= rows then Ok (List.rev acc)
    else
      let bits = List.mapi (fun i pin -> (pin, row land (1 lsl i) <> 0)) ext_in in
      match simulate db ~gate ~inputs:bits with
      | Ok outs ->
          collect ((List.map snd bits, List.map snd outs) :: acc) (row + 1)
      | Error (Errors.Eval_error _) -> collect acc (row + 1)
      | Error _ as e -> Result.map (fun _ -> []) e
  in
  collect [] 0

let default_choose db iface =
  let* impls = Database.implementations_of db iface in
  match impls with [] -> Ok None | impl :: _ -> Ok (Some impl)

let propagation_delay db ?choose impl =
  let choose = Option.value ~default:(default_choose db) choose in
  let rec delay_of seen impl =
    if List.exists (Surrogate.equal impl) seen then
      Error (Errors.Binding_cycle "component recursion in delay analysis")
    else
      let* own =
        let* v = Database.get_attr db impl "TimeBehavior" in
        match Value.as_int v with Some i -> Ok i | None -> Ok 0
      in
      let* uses = Database.subclass_members db impl "SubGates" in
      let* worst =
        List.fold_left
          (fun acc use ->
            let* acc = acc in
            let* iface = Database.transmitter_of db use in
            match iface with
            | None -> Ok acc
            | Some iface -> (
                let* chosen = choose iface in
                match chosen with
                | None -> Ok acc
                | Some sub_impl ->
                    let* d = delay_of (impl :: seen) sub_impl in
                    Ok (max acc d)))
          (Ok 0) uses
      in
      Ok (own + worst)
  in
  delay_of [] impl
