(* Generated from schemas/*.ddl -- do not edit. *)
let gates = {ddl|/* Schema of the paper's chip-design example (sections 3 and 4).
   Adaptations from the published listings, per DESIGN.md:
   - the domain I/O is spelled IO (identifiers cannot contain "/");
   - subrelationship where-clauses name their binder explicitly
     ("as Wire"), matching the paper's use of Wire.Pin1;
   - the quantifier scoping of constraints is explicit;
   - GateInterface is defined in its hierarchical form (section 4.2)
     directly, since both variants cannot share one name. */

domain IO = (IN, OUT);
domain Point = (X, Y: integer);

obj-type PinType =
  attributes:
    InOut: IO;
    PinLocation: Point;
end PinType;

rel-type WireType =
  relates:
    Pin1, Pin2: object-of-type PinType;
  attributes:
    Corners: list-of Point;
end WireType;

obj-type SimpleGate =
  attributes:
    Length, Width: integer;
    Function: (AND, OR, NOR, NAND);
    Pins: set-of ( PinId: integer; InOut: IO; );
  constraints:
    count (Pins) = 2 where Pins.InOut = IN;
    count (Pins) = 1 where Pins.InOut = OUT;
end SimpleGate;

obj-type ElementaryGate =
  /* equals SimpleGate except for the definition of Pins */
  attributes:
    Length, Width: integer;
    Function: (AND, OR, NOR, NAND);
    GatePosition: Point;
  types-of-subclasses:
    Pins: PinType;
  constraints:
    count (Pins) = 2 where Pins.InOut = IN;
    count (Pins) = 1 where Pins.InOut = OUT;
end ElementaryGate;

obj-type Gate =
  /* gates constructed from AND, OR, NAND and NOR gates */
  attributes:
    Length, Width: integer;
    Function: matrix-of boolean;
  types-of-subclasses:
    Pins: PinType;
    SubGates: ElementaryGate;
  types-of-subrels:
    Wires: WireType as Wire
      where (Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins)
        and (Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins);
end Gate;

/* ----- section 4.2: interface hierarchy ----- */

obj-type GateInterface_I =
  types-of-subclasses:
    Pins: PinType;
end GateInterface_I;

inher-rel-type AllOf_GateInterface_I =
  transmitter: object-of-type GateInterface_I;
  inheritor: object;
  inheriting: Pins;
end AllOf_GateInterface_I;

obj-type GateInterface =
  inheritor-in: AllOf_GateInterface_I;
  attributes:
    Length, Width: integer;
end GateInterface;

inher-rel-type AllOf_GateInterface =
  /* enables objects to inherit all data of GateInterface objects */
  transmitter: object-of-type GateInterface;
  inheritor: object;
  inheriting: Length, Width, Pins;
end AllOf_GateInterface;

/* ----- section 4.3: composite implementations ----- */

obj-type GateImplementation =
  inheritor-in: AllOf_GateInterface;
  attributes:
    Function: matrix-of boolean;
    TimeBehavior: integer;
  types-of-subclasses:
    SubGates:
      inheritor-in: AllOf_GateInterface;
      attributes:
        GateLocation: Point;
  types-of-subrels:
    Wires: WireType as Wire
      where (Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins)
        and (Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins);
end GateImplementation;

inher-rel-type SomeOf_Gate =
  transmitter: object-of-type GateImplementation;
  inheritor: object;
  inheriting: Length, Width, TimeBehavior, Pins;
end SomeOf_Gate;

obj-type TimingProbe =
  inheritor-in: SomeOf_Gate;
  attributes:
    ProbeNote: string;
end TimingProbe;
|ddl}
let steel = {ddl|/* Schema of the paper's steel-construction example (section 5).
   Adaptations from the published listings, per DESIGN.md:
   - AllOf_GirderIf / AllOf_PlateIf declare "inheritor: object" because the
     paper binds both the Girder/Plate types and the anonymous component
     subclasses of WeightCarrying_Structure to them;
   - the ScrewingType constraints carry labels and explicit quantifier
     scoping;
   - Designer/Description use the string domain (the paper writes "char").
   Requires Point from gates.ddl or an equivalent prior definition. */

domain AreaDom = record:
  Length, Width: integer;
end-domain AreaDom;

obj-type BoltType =
  attributes:
    Length, Diameter: integer;
end BoltType;

obj-type NutType =
  attributes:
    Length, Diameter: integer;
end NutType;

obj-type BoreType =
  attributes:
    Diameter, Length: integer;
    Position: Point;
end BoreType;

obj-type GirderInterface =
  attributes:
    Length, Height, Width: integer;
  types-of-subclasses:
    Bores: BoreType;
  constraints:
    proportions: Length < 100 * Height * Width;
end GirderInterface;

obj-type PlateInterface =
  attributes:
    Thickness: integer;
    Area: AreaDom;
  types-of-subclasses:
    Bores: BoreType;
end PlateInterface;

inher-rel-type AllOf_GirderIf =
  transmitter: object-of-type GirderInterface;
  inheritor: object;
  inheriting: Length, Height, Width, Bores;
end AllOf_GirderIf;

inher-rel-type AllOf_PlateIf =
  transmitter: object-of-type PlateInterface;
  inheritor: object;
  inheriting: Thickness, Area, Bores;
end AllOf_PlateIf;

obj-type Girder =
  inheritor-in: AllOf_GirderIf;
  attributes:
    Material: (wood, metal);
end Girder;

obj-type Plate =
  inheritor-in: AllOf_PlateIf;
  attributes:
    Material: (wood, metal);
end Plate;

inher-rel-type AllOf_BoltType =
  transmitter: object-of-type BoltType;
  inheritor: object;
  inheriting: Length, Diameter;
end AllOf_BoltType;

inher-rel-type AllOf_NutType =
  transmitter: object-of-type NutType;
  inheritor: object;
  inheriting: Length, Diameter;
end AllOf_NutType;

rel-type ScrewingType =
  relates:
    Bores: set-of object-of-type BoreType;
  attributes:
    Strength: integer;
  types-of-subclasses:
    Bolt:
      inheritor-in: AllOf_BoltType;
    Nut:
      inheritor-in: AllOf_NutType;
  constraints:
    one_bolt: count (Bolt) = 1;
    one_nut: count (Nut) = 1;
    diameters_match: for (s in Bolt, n in Nut): s.Diameter = n.Diameter;
    bolt_fits_bores: for (s in Bolt, b in Bores): s.Diameter <= b.Diameter;
    bolt_length: for (s in Bolt, n in Nut):
      s.Length = n.Length + sum (Bores.Length);
end ScrewingType;

obj-type WeightCarrying_Structure =
  attributes:
    Designer: string;
    Description: string;
  types-of-subclasses:
    Girders:
      inheritor-in: AllOf_GirderIf;
    Plates:
      inheritor-in: AllOf_PlateIf;
  types-of-subrels:
    Screwings: ScrewingType
      where for x in Screwings.Bores:
        x in Girders.Bores or x in Plates.Bores;
end WeightCarrying_Structure;
|ddl}
