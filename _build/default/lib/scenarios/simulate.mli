(** A gate-level logic simulator and timing analyzer over the paper's
    netlists — the application the paper's introduction motivates ("time
    information for time simulations", section 4.1).

    {!simulate} evaluates a [Gate] complex object: elementary AND/OR/NOR/
    NAND subgates connected by [Wires] subrelationships, with the gate's
    own [Pins] as external connectors.  Values propagate from drivers
    (external IN pins, subgate OUT pins) to sinks until the netlist
    stabilizes; netlists with state-holding feedback (e.g. the Figure 1
    flip-flop with S = R = 0) are reported as not converging, which is the
    honest combinational answer.

    {!propagation_delay} computes the critical-path delay of a
    [GateImplementation] composite: its own [TimeBehavior] plus the worst
    component delay, where each component interface is resolved to an
    implementation by the [choose] policy — the version-selection story of
    section 6 applied to analysis. *)

open Compo_core

val simulate :
  Database.t ->
  gate:Surrogate.t ->
  inputs:(Surrogate.t * bool) list ->
  ((Surrogate.t * bool) list, Errors.t) result
(** [inputs] assigns the gate's external IN pins (all must be given);
    the result assigns its external OUT pins.  Fails with [Eval_error] if
    the netlist does not stabilize, and with [Schema_error] on malformed
    netlists (a wire between two drivers or two sinks, an unknown gate
    function). *)

val truth_table :
  Database.t -> gate:Surrogate.t ->
  ((bool list * bool list) list, Errors.t) result
(** Exhaustive simulation over all input combinations (inputs in pin
    order); rows that do not stabilize are omitted. *)

val propagation_delay :
  Database.t ->
  ?choose:(Surrogate.t -> (Surrogate.t option, Errors.t) result) ->
  Surrogate.t ->
  (int, Errors.t) result
(** Critical-path delay of an implementation.  [choose] maps a component
    {e interface} to the implementation to analyze (default: its most
    recently bound implementation; interfaces without one contribute 0). *)
