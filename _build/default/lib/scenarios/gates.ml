open Compo_core

type io = In | Out

let io_value = function
  | In -> Value.Enum_case "IN"
  | Out -> Value.Enum_case "OUT"

let ( let* ) = Result.bind

let attr name domain = { Schema.attr_name = name; attr_domain = domain }
let constr name expr = { Schema.c_name = name; c_expr = expr }

let pin_count_constraints =
  (* count (Pins) = 2 where Pins.InOut = IN; count (Pins) = 1 where ... = OUT *)
  let count_io io n =
    Expr.(count ~where:(path [ "Pins"; "InOut" ] = enum io) [ "Pins" ] = int n)
  in
  [ constr "two_inputs" (count_io "IN" 2); constr "one_output" (count_io "OUT" 1) ]

let wires_where =
  (* (Wires.Pin1 in Pins or Wires.Pin1 in SubGates.Pins) and (same for Pin2) *)
  let endpoint p =
    Expr.(
      in_ (path [ "Wires"; p ]) (path [ "Pins" ])
      || in_ (path [ "Wires"; p ]) (path [ "SubGates"; "Pins" ]))
  in
  Expr.(endpoint "Pin1" && endpoint "Pin2")

let define_io_and_point db =
  let* () = Database.define_domain db "IO" (Domain.Enum [ "IN"; "OUT" ]) in
  Database.define_domain db "Point"
    (Domain.Record [ ("X", Domain.Integer); ("Y", Domain.Integer) ])

let define_section3_types db =
  let* () =
    Database.define_obj_type db
      {
        Schema.ot_name = "PinType";
        ot_inheritor_in = None;
        ot_attrs =
          [ attr "InOut" (Domain.Named "IO"); attr "PinLocation" (Domain.Named "Point") ];
        ot_subclasses = [];
        ot_subrels = [];
        ot_constraints = [];
      }
  in
  let* () =
    Database.define_rel_type db
      {
        Schema.rt_name = "WireType";
        rt_relates =
          [
            { Schema.p_name = "Pin1"; p_card = Schema.One; p_type = Some "PinType" };
            { Schema.p_name = "Pin2"; p_card = Schema.One; p_type = Some "PinType" };
          ];
        rt_attrs = [ attr "Corners" (Domain.List_of (Domain.Named "Point")) ];
        rt_subclasses = [];
        rt_constraints = [];
      }
  in
  let gate_functions = Domain.Enum [ "AND"; "OR"; "NOR"; "NAND" ] in
  let* () =
    Database.define_obj_type db
      {
        Schema.ot_name = "SimpleGate";
        ot_inheritor_in = None;
        ot_attrs =
          [
            attr "Length" Domain.Integer;
            attr "Width" Domain.Integer;
            attr "Function" gate_functions;
            attr "Pins"
              (Domain.Set_of
                 (Domain.Record
                    [ ("PinId", Domain.Integer); ("InOut", Domain.Named "IO") ]));
          ];
        ot_subclasses = [];
        ot_subrels = [];
        ot_constraints = pin_count_constraints;
      }
  in
  let* () =
    Database.define_obj_type db
      {
        Schema.ot_name = "ElementaryGate";
        ot_inheritor_in = None;
        ot_attrs =
          [
            attr "Length" Domain.Integer;
            attr "Width" Domain.Integer;
            attr "Function" gate_functions;
            attr "GatePosition" (Domain.Named "Point");
          ];
        ot_subclasses =
          [ { Schema.sc_name = "Pins"; sc_member = Schema.Named_type "PinType" } ];
        ot_subrels = [];
        ot_constraints = pin_count_constraints;
      }
  in
  Database.define_obj_type db
    {
      Schema.ot_name = "Gate";
      ot_inheritor_in = None;
      ot_attrs =
        [
          attr "Length" Domain.Integer;
          attr "Width" Domain.Integer;
          attr "Function" (Domain.Matrix_of Domain.Boolean);
        ];
      ot_subclasses =
        [
          { Schema.sc_name = "Pins"; sc_member = Schema.Named_type "PinType" };
          { Schema.sc_name = "SubGates"; sc_member = Schema.Named_type "ElementaryGate" };
        ];
      ot_subrels =
        [
          {
            Schema.sr_name = "Wires";
            sr_rel_type = "WireType";
            sr_binder = None;
            sr_where = Some wires_where;
          };
        ];
      ot_constraints = [];
    }

let define_interface_hierarchy db =
  (* section 4.2: GateInterface_I carries the pins; GateInterface inherits
     them and adds the expansion (Length/Width). *)
  let* () =
    Database.define_obj_type db
      {
        Schema.ot_name = "GateInterface_I";
        ot_inheritor_in = None;
        ot_attrs = [];
        ot_subclasses =
          [ { Schema.sc_name = "Pins"; sc_member = Schema.Named_type "PinType" } ];
        ot_subrels = [];
        ot_constraints = [];
      }
  in
  let* () =
    Database.define_inher_rel_type db
      {
        Schema.it_name = "AllOf_GateInterface_I";
        it_transmitter = "GateInterface_I";
        it_inheritor = None;
        it_inheriting = [ "Pins" ];
        it_attrs = [];
         it_subclasses = [];
        it_constraints = [];
      }
  in
  let* () =
    Database.define_obj_type db
      {
        Schema.ot_name = "GateInterface";
        ot_inheritor_in = Some "AllOf_GateInterface_I";
        ot_attrs = [ attr "Length" Domain.Integer; attr "Width" Domain.Integer ];
        ot_subclasses = [];
        ot_subrels = [];
        ot_constraints = [];
      }
  in
  (* AllOf_GateInterface transmits Length, Width and the Pins that
     GateInterface itself inherits from GateInterface_I. *)
  Database.define_inher_rel_type db
    {
      Schema.it_name = "AllOf_GateInterface";
      it_transmitter = "GateInterface";
      it_inheritor = None;
      it_inheriting = [ "Length"; "Width"; "Pins" ];
      it_attrs = [];
         it_subclasses = [];
      it_constraints = [];
    }

let define_composite_implementation db =
  (* section 4.3: GateImplementation is an inheritor of its interface AND
     holds SubGates whose members inherit from component interfaces
     (Figure 4's dual use of AllOf_GateInterface). *)
  Database.define_obj_type db
    {
      Schema.ot_name = "GateImplementation";
      ot_inheritor_in = Some "AllOf_GateInterface";
      ot_attrs =
        [
          attr "Function" (Domain.Matrix_of Domain.Boolean);
          attr "TimeBehavior" Domain.Integer;
        ];
      ot_subclasses =
        [
          {
            Schema.sc_name = "SubGates";
            sc_member =
              Schema.Inline
                {
                  Schema.ot_name = "";
                  ot_inheritor_in = Some "AllOf_GateInterface";
                  ot_attrs = [ attr "GateLocation" (Domain.Named "Point") ];
                  ot_subclasses = [];
                  ot_subrels = [];
                  ot_constraints = [];
                };
          };
        ];
      ot_subrels =
        [
          {
            Schema.sr_name = "Wires";
            sr_rel_type = "WireType";
            sr_binder = None;
            sr_where = Some wires_where;
          };
        ];
      ot_constraints = [];
    }

let define_some_of_gate db =
  (* section 4.3: a composite needing TimeBehavior relates to the
     implementation directly, with tailored permeability. *)
  let* () =
    Database.define_inher_rel_type db
      {
        Schema.it_name = "SomeOf_Gate";
        it_transmitter = "GateImplementation";
        it_inheritor = None;
        it_inheriting = [ "Length"; "Width"; "TimeBehavior"; "Pins" ];
        it_attrs = [];
         it_subclasses = [];
        it_constraints = [];
      }
  in
  Database.define_obj_type db
    {
      Schema.ot_name = "TimingProbe";
      ot_inheritor_in = Some "SomeOf_Gate";
      ot_attrs = [ attr "ProbeNote" Domain.String ];
      ot_subclasses = [];
      ot_subrels = [];
      ot_constraints = [];
    }


let define_schema db =
  let* () = define_io_and_point db in
  let* () = define_section3_types db in
  let* () = define_interface_hierarchy db in
  let* () = define_composite_implementation db in
  let* () = define_some_of_gate db in
  let* () = Database.create_class db ~name:"Interfaces" ~member_type:"GateInterface" in
  let* () =
    Database.create_class db ~name:"Implementations" ~member_type:"GateImplementation"
  in
  Database.create_class db ~name:"Gates" ~member_type:"Gate"

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)

let simple_pins =
  Value.set
    [
      Value.record [ ("PinId", Value.Int 1); ("InOut", io_value In) ];
      Value.record [ ("PinId", Value.Int 2); ("InOut", io_value In) ];
      Value.record [ ("PinId", Value.Int 3); ("InOut", io_value Out) ];
    ]

let new_simple_gate db ~func ~length ~width =
  Database.new_object db ~ty:"SimpleGate"
    ~attrs:
      [
        ("Length", Value.Int length);
        ("Width", Value.Int width);
        ("Function", Value.Enum_case func);
        ("Pins", simple_pins);
      ]
    ()

let add_pin db ~parent ~io ~x ~y =
  Database.new_subobject db ~parent ~subclass:"Pins"
    ~attrs:[ ("InOut", io_value io); ("PinLocation", Value.point x y) ]
    ()

let standard_pins db gate =
  let* _ = add_pin db ~parent:gate ~io:In ~x:0 ~y:0 in
  let* _ = add_pin db ~parent:gate ~io:In ~x:0 ~y:2 in
  let* _ = add_pin db ~parent:gate ~io:Out ~x:4 ~y:1 in
  Ok ()

let new_elementary_gate db ?parent ~func ~x ~y () =
  let attrs =
    [
      ("Length", Value.Int 4);
      ("Width", Value.Int 2);
      ("Function", Value.Enum_case func);
      ("GatePosition", Value.point x y);
    ]
  in
  let* gate =
    match parent with
    | None -> Database.new_object db ~ty:"ElementaryGate" ~attrs ()
    | Some (parent, subclass) ->
        Database.new_subobject db ~parent ~subclass ~attrs ()
  in
  let* () = standard_pins db gate in
  Ok gate

let gate_pins db gate = Database.subclass_members db gate "Pins"

let pin db gate i =
  let* pins = gate_pins db gate in
  match List.nth_opt pins i with
  | Some p -> Ok p
  | None ->
      Error
        (Errors.Unknown_object
           (Printf.sprintf "%s has no pin %d" (Surrogate.to_string gate) i))

let wire db ~parent ~from_pin ~to_pin =
  Database.new_subrel db ~parent ~subrel:"Wires"
    ~participants:[ ("Pin1", Value.Ref from_pin); ("Pin2", Value.Ref to_pin) ]
    ~attrs:[ ("Corners", Value.List []) ]
    ()

(* Truth table of an SR flip-flop built from two cross-coupled NOR gates;
   rows are (S, R) -> (Q, Q').  The exact boolean content only needs to be
   well-typed for the model. *)
let flip_flop_function =
  Value.Matrix
    [|
      [| Value.Bool false; Value.Bool false |];
      [| Value.Bool false; Value.Bool true |];
      [| Value.Bool true; Value.Bool false |];
      [| Value.Bool true; Value.Bool true |];
    |]

let flip_flop db =
  let* ff =
    Database.new_object db ~cls:"Gates" ~ty:"Gate"
      ~attrs:
        [
          ("Length", Value.Int 10);
          ("Width", Value.Int 6);
          ("Function", flip_flop_function);
        ]
      ()
  in
  (* external pins: S, R inputs; Q, Q' outputs *)
  let* s_pin = add_pin db ~parent:ff ~io:In ~x:0 ~y:1 in
  let* r_pin = add_pin db ~parent:ff ~io:In ~x:0 ~y:5 in
  let* q_pin = add_pin db ~parent:ff ~io:Out ~x:10 ~y:1 in
  let* q'_pin = add_pin db ~parent:ff ~io:Out ~x:10 ~y:5 in
  let* nor1 =
    new_elementary_gate db ~parent:(ff, "SubGates") ~func:"NOR" ~x:3 ~y:0 ()
  in
  let* nor2 =
    new_elementary_gate db ~parent:(ff, "SubGates") ~func:"NOR" ~x:3 ~y:4 ()
  in
  let* nor1_in1 = pin db nor1 0 in
  let* nor1_in2 = pin db nor1 1 in
  let* nor1_out = pin db nor1 2 in
  let* nor2_in1 = pin db nor2 0 in
  let* nor2_in2 = pin db nor2 1 in
  let* nor2_out = pin db nor2 2 in
  (* R and S drive the first input of each NOR; outputs cross-couple back
     to the second inputs; outputs also drive Q and Q'. *)
  let* _ = wire db ~parent:ff ~from_pin:r_pin ~to_pin:nor1_in1 in
  let* _ = wire db ~parent:ff ~from_pin:s_pin ~to_pin:nor2_in1 in
  let* _ = wire db ~parent:ff ~from_pin:nor1_out ~to_pin:nor2_in2 in
  let* _ = wire db ~parent:ff ~from_pin:nor2_out ~to_pin:nor1_in2 in
  let* _ = wire db ~parent:ff ~from_pin:nor1_out ~to_pin:q_pin in
  let* _ = wire db ~parent:ff ~from_pin:nor2_out ~to_pin:q'_pin in
  Ok ff

let new_pin_interface db ~pins =
  let* pi = Database.new_object db ~ty:"GateInterface_I" () in
  let* () =
    List.fold_left
      (fun acc (i, io) ->
        let* () = acc in
        let* _ = add_pin db ~parent:pi ~io ~x:0 ~y:i in
        Ok ())
      (Ok ())
      (List.mapi (fun i io -> (i, io)) pins)
  in
  Ok pi

let new_interface db ~pin_interface ~length ~width =
  let* iface =
    Database.new_object db ~cls:"Interfaces" ~ty:"GateInterface"
      ~attrs:[ ("Length", Value.Int length); ("Width", Value.Int width) ]
      ()
  in
  let* _ =
    Database.bind db ~via:"AllOf_GateInterface_I" ~transmitter:pin_interface
      ~inheritor:iface ()
  in
  Ok iface

let new_implementation db ~interface ?(time_behavior = 1) () =
  let* impl =
    Database.new_object db ~cls:"Implementations" ~ty:"GateImplementation"
      ~attrs:[ ("TimeBehavior", Value.Int time_behavior) ]
      ()
  in
  let* _ =
    Database.bind db ~via:"AllOf_GateInterface" ~transmitter:interface
      ~inheritor:impl ()
  in
  Ok impl

let use_component db ~composite ~component_interface ~x ~y =
  let* sub =
    Database.new_subobject db ~parent:composite ~subclass:"SubGates"
      ~attrs:[ ("GateLocation", Value.point x y) ]
      ()
  in
  let* _ =
    Database.bind db ~via:"AllOf_GateInterface" ~transmitter:component_interface
      ~inheritor:sub ()
  in
  Ok sub

let new_timing_probe db ~implementation ~note =
  let* probe =
    Database.new_object db ~ty:"TimingProbe"
      ~attrs:[ ("ProbeNote", Value.Str note) ]
      ()
  in
  let* _ =
    Database.bind db ~via:"SomeOf_Gate" ~transmitter:implementation
      ~inheritor:probe ()
  in
  Ok probe

let nor_interface db =
  let* pi = new_pin_interface db ~pins:[ In; In; Out ] in
  new_interface db ~pin_interface:pi ~length:4 ~width:2

let nor_truth_table =
  Value.Matrix
    [|
      [| Value.Bool false; Value.Bool false; Value.Bool true |];
      [| Value.Bool false; Value.Bool true; Value.Bool false |];
      [| Value.Bool true; Value.Bool false; Value.Bool false |];
      [| Value.Bool true; Value.Bool true; Value.Bool false |];
    |]

let nor_implementation db ~interface =
  let* impl = new_implementation db ~interface ~time_behavior:1 () in
  let* () = Database.set_attr db impl "Function" nor_truth_table in
  Ok impl
