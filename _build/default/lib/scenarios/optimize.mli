(** Netlist optimization passes over [Gate] complex objects — a second
    application exercising the model's structural operations (where-used
    through the referrer index, cascade delete, relationship rewiring).

    Passes:
    - {e dead-gate elimination}: a subgate whose output pin drives no wire
      contributes nothing to the external outputs and is removed (with its
      pins and dangling input wires);
    - {e duplicate merging}: two subgates with the same function whose
      input pins are driven by the same sources compute the same value;
      the later one's consumers are rewired to the earlier one, which then
      makes the later one dead.

    [optimize] runs both passes to a fixpoint and returns statistics.
    The resulting netlist is behaviourally equivalent on every stabilizing
    input (asserted by the test suite via {!Simulate.truth_table}). *)

open Compo_core

type stats = {
  removed_gates : int;
  merged_gates : int;
  removed_wires : int;
  passes : int;
}

val eliminate_dead : Database.t -> gate:Surrogate.t -> (int * int, Errors.t) result
(** One dead-gate sweep; returns (gates removed, wires removed). *)

val merge_duplicates : Database.t -> gate:Surrogate.t -> (int, Errors.t) result
(** One duplicate-merge sweep; returns the number of subgates merged
    (rewired away — a following dead sweep deletes them). *)

val optimize : Database.t -> gate:Surrogate.t -> (stats, Errors.t) result
