(** Lock modes and their compatibility (granular locking with intention
    modes, as needed for section 6's composite-object locking). *)

type mode =
  | IS  (** intention shared: descending to read parts *)
  | IX  (** intention exclusive: descending to update parts *)
  | S  (** shared *)
  | SIX  (** shared + intention exclusive *)
  | X  (** exclusive *)

val to_string : mode -> string
val compatible : mode -> mode -> bool

val supremum : mode -> mode -> mode
(** Least mode at least as strong as both (used for lock upgrades). *)

val stronger_or_equal : mode -> mode -> bool
(** [stronger_or_equal a b]: a grants every access b grants. *)
