open Compo_core

let neighbors store s =
  match Store.get store s with
  | Error _ -> []
  | Ok e ->
      let from_referrers =
        (* the relationship objects and their other participants *)
        List.concat_map
          (fun r ->
            match Store.get store r with
            | Error _ -> []
            | Ok re ->
                r
                :: Store.Smap.fold
                     (fun _ v acc -> Value.refs v @ acc)
                     re.Store.participants [])
          (Store.referrers store s)
      in
      let from_participants =
        Store.Smap.fold (fun _ v acc -> Value.refs v @ acc) e.Store.participants []
      in
      let from_binding =
        match e.Store.bound with Some b -> [ b.Store.b_transmitter ] | None -> []
      in
      let from_inheritors =
        List.filter_map
          (fun link ->
            match Store.get store link with
            | Ok le -> (
                match Store.Smap.find_opt "inheritor" le.Store.participants with
                | Some (Value.Ref i) -> Some i
                | Some _ | None -> None)
            | Error _ -> None)
          e.Store.inheritor_links
      in
      let from_owner = match e.Store.owner with Some o -> [ o ] | None -> [] in
      let from_children =
        Store.Smap.fold (fun _ ms acc -> ms @ acc) e.Store.subobjs []
        @ Store.Smap.fold (fun _ ms acc -> ms @ acc) e.Store.subrels []
      in
      List.sort_uniq Surrogate.compare
        (List.filter
           (fun n -> not (Surrogate.equal n s))
           (from_referrers @ from_participants @ from_binding @ from_inheritors
          @ from_owner @ from_children))

let write_locked lm ~txn =
  List.filter_map
    (fun (s, mode) ->
      match mode with
      | Lock.X | Lock.SIX | Lock.IX -> Some s
      | Lock.S | Lock.IS -> None)
    (Lock_manager.locks_of lm ~txn)

let potential_conflicts store lm ~txn1 ~txn2 =
  let a_set = write_locked lm ~txn:txn1 in
  let b_set = write_locked lm ~txn:txn2 in
  List.concat_map
    (fun a ->
      let related = a :: neighbors store a in
      List.filter_map
        (fun b ->
          if List.exists (Surrogate.equal b) related then Some (a, b) else None)
        b_set)
    a_set
