open Compo_core

type right = No_access | Read_only | Read_write

let right_to_string = function
  | No_access -> "no-access"
  | Read_only -> "read-only"
  | Read_write -> "read-write"

type t = {
  default : right;
  rules : (string, right) Hashtbl.t;  (* "user\000surrogate" -> right *)
  protected : unit Surrogate.Tbl.t;
}

let key ~user s = user ^ "\000" ^ Surrogate.to_string s

let create ?(default = Read_write) () =
  { default; rules = Hashtbl.create 64; protected = Surrogate.Tbl.create 64 }

let grant t ~user s right = Hashtbl.replace t.rules (key ~user s) right
let protect t s = Surrogate.Tbl.replace t.protected s ()

let rights t ~user s =
  match Hashtbl.find_opt t.rules (key ~user s) with
  | Some r -> r
  | None -> if Surrogate.Tbl.mem t.protected s then Read_only else t.default

let cap_mode t ~user s mode =
  match rights t ~user s with
  | Read_write -> Some mode
  | No_access -> None
  | Read_only -> (
      match mode with
      | Lock.S | Lock.IS -> Some mode
      | Lock.X | Lock.SIX -> Some Lock.S
      | Lock.IX -> Some Lock.IS)
