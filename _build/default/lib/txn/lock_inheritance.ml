open Compo_core

let attr_lock_set store s name =
  let schema = Store.schema store in
  let rec go acc s name =
    let acc = s :: acc in
    match Store.get store s with
    | Error _ -> acc
    | Ok e -> (
        match Schema.find_effective_attr schema e.Store.type_name name with
        | Some (_, Schema.Via _) -> (
            match e.Store.bound with
            | Some b -> go acc b.Store.b_transmitter name
            | None -> acc)
        | Some (_, Schema.Own) | None -> (
            (* the name may denote a subclass rather than an attribute *)
            match Schema.find_effective_subclass schema e.Store.type_name name with
            | Some (_, Schema.Via _) -> (
                match e.Store.bound with
                | Some b -> go acc b.Store.b_transmitter name
                | None -> acc)
            | Some (_, Schema.Own) | None -> acc))
  in
  List.rev (go [] s name)

let read_lock_set store s = s :: Inheritance.transmitter_closure store s

let expansion_lock_set ?(max_depth = -1) store s =
  let seen = ref Surrogate.Set.empty in
  let order = ref [] in
  let rec go depth s =
    if not (Surrogate.Set.mem s !seen) then begin
      seen := Surrogate.Set.add s !seen;
      order := s :: !order;
      match Store.get store s with
      | Error _ -> ()
      | Ok e ->
          Store.Smap.iter (fun _ ms -> List.iter (go depth) ms) e.Store.subobjs;
          Store.Smap.iter (fun _ ms -> List.iter (go depth) ms) e.Store.subrels;
          (match e.Store.bound with
          | Some b when depth <> 0 -> go (depth - 1) b.Store.b_transmitter
          | Some _ | None -> ())
    end
  in
  go max_depth s;
  List.rev !order
