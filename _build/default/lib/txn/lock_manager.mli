(** Lock tables with deadlock detection.

    Designed for the simulated concurrency of a single-process design
    database: {!acquire} either grants immediately, reports [`Blocked]
    (after recording the waits-for edges so a later retry can succeed once
    the holder releases), or fails with [Lock_error] when waiting would
    close a cycle in the waits-for graph (deadlock). *)

open Compo_core

type txn_id = int
type t

val create : unit -> t

val acquire :
  t -> txn:txn_id -> Surrogate.t -> Lock.mode ->
  ([ `Granted | `Blocked of txn_id list ], Errors.t) result
(** Re-acquiring by the same transaction upgrades to the supremum of the
    held and requested modes.  [`Blocked holders] names the conflicting
    transactions; a deadlock is a [Lock_error]. *)

val acquire_exn : t -> txn:txn_id -> Surrogate.t -> Lock.mode -> unit
(** Like {!acquire} but raises [Compo_error] on [`Blocked] as well —
    used by the transaction layer's hooks, which cannot return results. *)

val release_all : t -> txn:txn_id -> unit
(** Two-phase: all locks of a transaction go at commit/abort.  Clears its
    waits-for edges. *)

val holds : t -> txn:txn_id -> Surrogate.t -> Lock.mode option
val holders : t -> Surrogate.t -> (txn_id * Lock.mode) list
val locks_of : t -> txn:txn_id -> (Surrogate.t * Lock.mode) list
val lock_count : t -> int

val waits_for : t -> txn:txn_id -> txn_id list
(** Current outgoing waits-for edges (for conflict diagnosis and tests). *)
