(** Access control, and its coupling to the lock manager (paper section 6).

    "These 'standard objects' usually are protected by access control
    mechanisms preventing the normal user from updating them.  Thus, there
    should be a tight connection between the access control manager and the
    lock manager: if objects are to be locked implicitly by complex
    operations the access control manager should be consulted to grant no
    lock which allows more operations than the access control admits." *)

open Compo_core

type right = No_access | Read_only | Read_write

val right_to_string : right -> string

type t

val create : ?default:right -> unit -> t
(** [default] applies where no explicit rule matches; defaults to
    [Read_write] (a permissive design database). *)

val grant : t -> user:string -> Surrogate.t -> right -> unit
(** Explicit per-user, per-object rule (strongest precedence). *)

val protect : t -> Surrogate.t -> unit
(** Mark an object as a protected standard object: [Read_only] for every
    user without an explicit per-user rule on it (the paper's standard
    cells, bolts and nuts). *)

val rights : t -> user:string -> Surrogate.t -> right

val cap_mode : t -> user:string -> Surrogate.t -> Lock.mode -> Lock.mode option
(** The strongest lock not exceeding the user's rights:
    [Read_write] grants the requested mode; [Read_only] caps X/SIX/IX
    down to S/S/IS; [No_access] grants nothing.  This is the consultation
    the paper requires before implicit locking. *)
