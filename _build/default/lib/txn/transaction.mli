(** Design transactions over the object store.

    Combines two-phase locking ({!Lock_manager}), access control
    ({!Access_control}), lock inheritance (through the store's read/write
    hooks — reading inherited data S-locks each transmitter hop), and an
    undo log for aborts.

    The model is the single-process simulated concurrency of a design
    workstation: several open transactions interleave their operations; a
    conflicting operation fails with [Lock_error] (the caller may retry
    after the holder commits) and a wait that would close a waits-for cycle
    fails as a deadlock.

    Deleting objects inside a transaction is intentionally unsupported
    (CAD transactions archive rather than destroy; an undoable delete of a
    composite would need store-level snapshots). *)

open Compo_core

type manager

val create_manager : ?access:Access_control.t -> Store.t -> manager
val store_of : manager -> Store.t
val lock_manager : manager -> Lock_manager.t
val access_control : manager -> Access_control.t

type status = Active | Committed | Aborted
type t

val begin_txn : manager -> user:string -> t
val id : t -> Lock_manager.txn_id
val user : t -> string
val status : t -> status

val commit : manager -> t -> (unit, Errors.t) result
(** Releases all locks. *)

val abort : manager -> t -> (unit, Errors.t) result
(** Undoes the transaction's writes (attribute updates, object and
    relationship creations, binds/unbinds) in reverse order, then releases
    all locks. *)

(** {1 Transactional operations}

    Each acquires the necessary locks (S for reads — including the
    transmitters touched by inheritance resolution — X for writes, capped
    and checked against access control) and records undo information. *)

val get_attr : manager -> t -> Surrogate.t -> string -> (Value.t, Errors.t) result
val subclass_members : manager -> t -> Surrogate.t -> string -> (Surrogate.t list, Errors.t) result
val set_attr : manager -> t -> Surrogate.t -> string -> Value.t -> (unit, Errors.t) result

val new_object :
  manager -> t -> ?cls:string -> ty:string -> ?attrs:(string * Value.t) list ->
  unit -> (Surrogate.t, Errors.t) result

val new_subobject :
  manager -> t -> parent:Surrogate.t -> subclass:string ->
  ?attrs:(string * Value.t) list -> unit -> (Surrogate.t, Errors.t) result

val new_subrel :
  manager -> t -> parent:Surrogate.t -> subrel:string ->
  participants:(string * Value.t) list -> ?attrs:(string * Value.t) list ->
  unit -> (Surrogate.t, Errors.t) result

val bind :
  manager -> t -> via:string -> transmitter:Surrogate.t -> inheritor:Surrogate.t ->
  unit -> (Surrogate.t, Errors.t) result

val unbind : manager -> t -> Surrogate.t -> (unit, Errors.t) result

val lock_expansion :
  manager -> t -> ?max_depth:int -> Surrogate.t -> mode:Lock.mode ->
  ((Surrogate.t * Lock.mode) list, Errors.t) result
(** Lock a component hierarchy (section 6's expansion): the root and every
    reachable subobject, subrelationship, and component.  [max_depth]
    bounds how many binding hops into components are followed (the paper:
    "to see a composite object with {e some or all} of its components
    materialized"); default unbounded.  The requested mode is {e capped per
    object} by the access-control manager — asking for X over an expansion
    containing protected standard parts yields S on those parts instead of
    failing, exactly the behaviour the paper describes for customized
    standard cells.  [No_access] objects fail the operation. *)
