(** Conflict analysis over explicit relationships (paper section 6).

    "The explicitly defined relationships between objects can be used to
    identify potential conflicts (two update transactions are working on
    objects which are related to each other)." *)

open Compo_core

val neighbors : Store.t -> Surrogate.t -> Surrogate.t list
(** Objects related to the given one: co-participants of the relationships
    it takes part in, its transmitter, its inheritors, its owner, and its
    direct subobjects/subrelationships.  Sorted, without the object
    itself. *)

val potential_conflicts :
  Store.t ->
  Lock_manager.t ->
  txn1:Lock_manager.txn_id ->
  txn2:Lock_manager.txn_id ->
  (Surrogate.t * Surrogate.t) list
(** Pairs (a, b) with a write-locked by [txn1], b write-locked by [txn2],
    and a = b or b a neighbor of a — the update/update situations worth
    flagging to the designers before they diverge. *)
