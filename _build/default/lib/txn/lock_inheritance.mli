(** Computing the lock footprint of inheritance-aware operations
    (paper section 6).

    "Accessing the data of a composite object which are inherited from a
    component requires to prevent the component also from being updated.
    Thus, the parts of the component which are visible in the composite
    object have to be read-locked when the data is touched in the composite
    object." — lock inheritance runs in the {e reverse} direction of data
    inheritance: reads at the inheritor side lock the transmitter side. *)

open Compo_core

val attr_lock_set : Store.t -> Surrogate.t -> string -> Surrogate.t list
(** Objects a read of the attribute touches: the object itself and, when
    the attribute is inherited, every transmitter along the resolution
    chain (stopping where permeability ends or the chain is unbound). *)

val read_lock_set : Store.t -> Surrogate.t -> Surrogate.t list
(** The object plus its full transmitter closure — the footprint of
    reading all of an object's (inherited) data. *)

val expansion_lock_set :
  ?max_depth:int -> Store.t -> Surrogate.t -> Surrogate.t list
(** Every object of the composite's expansion: the object, its subobjects
    and subrelationships transitively, and the components reached through
    bindings — the footprint of section 6's "complex operations [that]
    lock not only single objects but whole parts of the component
    hierarchy".  [max_depth] bounds the binding hops followed into
    components (own structure is always included); default unbounded. *)
