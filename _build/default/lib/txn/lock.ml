type mode = IS | IX | S | SIX | X

let to_string = function
  | IS -> "IS"
  | IX -> "IX"
  | S -> "S"
  | SIX -> "SIX"
  | X -> "X"

let compatible a b =
  match (a, b) with
  | IS, (IS | IX | S | SIX) | (IX | S | SIX), IS -> true
  | IX, IX -> true
  | S, S -> true
  | IX, S | S, IX -> false
  | SIX, (IX | S | SIX) | (IX | S), SIX -> false
  | X, _ | _, X -> false

(* The classical lattice: IS < IX, IS < S, IX < SIX, S < SIX, SIX < X. *)
let stronger_or_equal a b =
  match (a, b) with
  | x, y when x = y -> true
  | (IX | S | SIX | X), IS -> true
  | (SIX | X), (IX | S) -> true
  | X, SIX -> true
  | _ -> false

let supremum a b =
  if stronger_or_equal a b then a
  else if stronger_or_equal b a then b
  else
    match (a, b) with
    | IX, S | S, IX -> SIX
    | IS, IX | IX, IS -> IX
    | IS, S | S, IS -> S
    | _ -> X
