lib/txn/lock.ml:
