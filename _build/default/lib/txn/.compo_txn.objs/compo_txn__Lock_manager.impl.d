lib/txn/lock_manager.ml: Compo_core Errors Hashtbl List Lock Option Printf String Surrogate
