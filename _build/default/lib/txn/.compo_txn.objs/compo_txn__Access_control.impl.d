lib/txn/access_control.ml: Compo_core Hashtbl Lock Surrogate
