lib/txn/conflict.mli: Compo_core Lock_manager Store Surrogate
