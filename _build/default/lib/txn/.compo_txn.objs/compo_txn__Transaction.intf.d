lib/txn/transaction.mli: Access_control Compo_core Errors Lock Lock_manager Store Surrogate Value
