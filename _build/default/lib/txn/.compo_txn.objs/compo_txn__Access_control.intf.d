lib/txn/access_control.mli: Compo_core Lock Surrogate
