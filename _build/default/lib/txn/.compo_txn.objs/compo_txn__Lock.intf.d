lib/txn/lock.mli:
