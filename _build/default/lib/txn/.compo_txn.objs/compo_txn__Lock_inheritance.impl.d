lib/txn/lock_inheritance.ml: Compo_core Inheritance List Schema Store Surrogate
