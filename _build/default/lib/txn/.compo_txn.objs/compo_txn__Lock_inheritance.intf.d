lib/txn/lock_inheritance.mli: Compo_core Store Surrogate
