lib/txn/conflict.ml: Compo_core List Lock Lock_manager Store Surrogate Value
