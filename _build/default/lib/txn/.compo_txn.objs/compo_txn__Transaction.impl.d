lib/txn/transaction.ml: Access_control Compo_core Errors Inheritance List Lock Lock_inheritance Lock_manager Logs Option Printf Result Store String Surrogate
