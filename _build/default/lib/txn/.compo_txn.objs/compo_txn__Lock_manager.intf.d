lib/txn/lock_manager.mli: Compo_core Errors Lock Surrogate
