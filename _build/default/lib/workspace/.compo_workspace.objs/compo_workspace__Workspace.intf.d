lib/workspace/workspace.mli: Compo_core Compo_txn Errors Surrogate Value
