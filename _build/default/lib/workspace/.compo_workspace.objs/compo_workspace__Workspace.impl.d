lib/workspace/workspace.ml: Compo_core Compo_txn Compo_versions Errors List Option Printf Result Store String Surrogate Value
