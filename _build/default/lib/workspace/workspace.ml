open Compo_core
module Txn = Compo_txn.Transaction
module Lock = Compo_txn.Lock

let ( let* ) = Result.bind

type manager = { ws_txn_mgr : Txn.manager }

let create_manager mgr = { ws_txn_mgr = mgr }

type state = Open | Checked_in | Discarded

type t = {
  ws_user : string;
  ws_public : Surrogate.t;
  ws_private : Surrogate.t;
  ws_mapping : (Surrogate.t * Surrogate.t) list;  (* public -> private *)
  ws_locks : (Surrogate.t * Lock.mode) list;
  ws_long_txn : Txn.t;
  mutable ws_state : state;
}

let state t = t.ws_state
let user t = t.ws_user
let public_root t = t.ws_public
let private_root t = t.ws_private
let private_of t s = List.assoc_opt s t.ws_mapping
let locked t = t.ws_locks

let checkout mg ~user root =
  let store = Txn.store_of mg.ws_txn_mgr in
  let txn = Txn.begin_txn mg.ws_txn_mgr ~user in
  (* lock the public expansion for the duration of the design task; the
     access-control manager caps protected parts down to S *)
  let* locks = Txn.lock_expansion mg.ws_txn_mgr txn root ~mode:Lock.X in
  let* priv, mapping =
    Compo_versions.Versioned.clone_object_mapped ~classes:false store root
  in
  Ok
    {
      ws_user = user;
      ws_public = root;
      ws_private = priv;
      ws_mapping = mapping;
      ws_locks = locks;
      ws_long_txn = txn;
      ws_state = Open;
    }

let check_open t =
  match t.ws_state with
  | Open -> Ok ()
  | Checked_in | Discarded ->
      Error (Errors.Lock_error "workspace is no longer open")

(* All entities transitively owned by [root] (the root included),
   following both subobject and subrelationship classes. *)
let owned_tree store root =
  let acc = ref Surrogate.Set.empty in
  let rec go s =
    if not (Surrogate.Set.mem s !acc) then begin
      acc := Surrogate.Set.add s !acc;
      match Store.get store s with
      | Error _ -> ()
      | Ok e ->
          Store.Smap.iter (fun _ ms -> List.iter go ms) e.Store.subobjs;
          Store.Smap.iter (fun _ ms -> List.iter go ms) e.Store.subrels
    end
  in
  go root;
  !acc

type change = {
  ch_object : Surrogate.t;
  ch_attr : string;
  ch_before : Value.t;
  ch_after : Value.t;
}

(* The private copy must still be exactly the mapped tree: growing or
   shrinking it cannot be written back attribute-wise. *)
let check_structure mg t =
  let store = Txn.store_of mg.ws_txn_mgr in
  let current = owned_tree store t.ws_private in
  let expected =
    List.fold_left
      (fun acc (_, priv) -> Surrogate.Set.add priv acc)
      Surrogate.Set.empty t.ws_mapping
  in
  if Surrogate.Set.equal current expected then Ok ()
  else if Surrogate.Set.subset expected current then
    Error
      (Errors.Schema_error
         (Printf.sprintf
            "workspace grew %d new object(s); structural changes must be \
             made on the public database"
            (Surrogate.Set.cardinal (Surrogate.Set.diff current expected))))
  else
    Error
      (Errors.Schema_error
         "workspace lost objects; structural changes must be made on the \
          public database")

let diff mg t =
  let* () = check_open t in
  let store = Txn.store_of mg.ws_txn_mgr in
  let* () = check_structure mg t in
  let* changes =
    List.fold_left
      (fun acc (pub, priv) ->
        let* acc = acc in
        let* pe = Store.get store pub in
        let* ve = Store.get store priv in
        let keys m = List.map fst (Store.Smap.bindings m) in
        let names =
          List.sort_uniq String.compare
            (keys pe.Store.attrs @ keys ve.Store.attrs)
        in
        Ok
          (List.fold_left
             (fun acc name ->
               let before =
                 Option.value ~default:Value.Null
                   (Store.Smap.find_opt name pe.Store.attrs)
               in
               let after =
                 Option.value ~default:Value.Null
                   (Store.Smap.find_opt name ve.Store.attrs)
               in
               if Value.equal before after then acc
               else
                 { ch_object = pub; ch_attr = name; ch_before = before; ch_after = after }
                 :: acc)
             acc names))
      (Ok []) t.ws_mapping
  in
  Ok (List.rev changes)

let drop_private mg t =
  let store = Txn.store_of mg.ws_txn_mgr in
  Store.delete store ~force:true t.ws_private

let checkin mg t =
  let* () = check_open t in
  let* changes = diff mg t in
  (* every changed public object must be X-locked by the long transaction
     (a protected part was only taken in S: its edits cannot land) *)
  let* () =
    List.fold_left
      (fun acc ch ->
        let* () = acc in
        match List.assoc_opt ch.ch_object t.ws_locks with
        | Some m when Lock.stronger_or_equal m Lock.X -> Ok ()
        | Some _ ->
            Error
              (Errors.Access_denied
                 (Printf.sprintf
                    "%s was checked out read-only (protected part); its \
                     change to %s cannot be checked in"
                    (Surrogate.to_string ch.ch_object) ch.ch_attr))
        | None ->
            Error
              (Errors.Lock_error
                 (Surrogate.to_string ch.ch_object ^ " is not covered by the checkout")))
      (Ok ()) changes
  in
  (* write back under the long transaction; abort on any failure so the
     public side never holds a partial check-in *)
  let apply () =
    List.fold_left
      (fun acc ch ->
        let* () = acc in
        Txn.set_attr mg.ws_txn_mgr t.ws_long_txn ch.ch_object ch.ch_attr ch.ch_after)
      (Ok ()) changes
  in
  match apply () with
  | Error e ->
      let (_ : (unit, Errors.t) result) = Txn.abort mg.ws_txn_mgr t.ws_long_txn in
      t.ws_state <- Discarded;
      let (_ : (unit, Errors.t) result) = drop_private mg t in
      Error e
  | Ok () ->
      let* () = drop_private mg t in
      let* () = Txn.commit mg.ws_txn_mgr t.ws_long_txn in
      t.ws_state <- Checked_in;
      Ok changes

let discard mg t =
  let* () = check_open t in
  let* () = drop_private mg t in
  let* () = Txn.abort mg.ws_txn_mgr t.ws_long_txn in
  t.ws_state <- Discarded;
  Ok ()
