(** Long design transactions: checkout / check-in over composite objects.

    The paper's section 6 points at engineering transaction models
    ([KLMP84], [KSUW85]): a designer takes a whole component hierarchy
    into a private workspace, works on it for hours, and integrates the
    result back atomically.  This module implements that cycle on top of
    {!Compo_txn} and {!Compo_versions}:

    - {!checkout} locks the expansion of the chosen composite (X, capped
      per object by the access-control manager: protected standard parts
      are taken in read mode) under a long transaction, and deep-copies
      the tree into a private working copy outside every public class;
    - the designer edits the {e private} copy freely, without locks;
    - {!checkin} diffs the working copy against the public originals,
      writes the changed attributes back under the held locks (updates to
      read-only parts are rejected), stamps dependent inheritance links,
      and releases everything atomically.  Failures detected before the
      write-back (structural changes, protected parts) leave the workspace
      open; a failure during the write-back itself aborts the long
      transaction — undoing any partial write — and discards the
      workspace, since its locks are gone;
    - {!discard} abandons the workspace.

    Structural edits (adding or removing subobjects in the workspace) are
    detected and rejected at check-in with a clear error: composite
    surgery must be performed on the public database, where relationship
    where-clauses and constraint checks see the full context. *)

open Compo_core

type manager

val create_manager : Compo_txn.Transaction.manager -> manager

type state = Open | Checked_in | Discarded

type t

val checkout : manager -> user:string -> Surrogate.t -> (t, Errors.t) result
val state : t -> state
val user : t -> string
val public_root : t -> Surrogate.t

val private_root : t -> Surrogate.t
(** Edit this tree with the ordinary {!Database}/{!Store} operations. *)

val private_of : t -> Surrogate.t -> Surrogate.t option
(** Workspace counterpart of a public object in the checked-out tree. *)

val locked : t -> (Surrogate.t * Compo_txn.Lock.mode) list
(** What the checkout holds on the public side. *)

type change = {
  ch_object : Surrogate.t;  (** public object *)
  ch_attr : string;
  ch_before : Value.t;
  ch_after : Value.t;
}

val diff : manager -> t -> (change list, Errors.t) result
(** Pending attribute changes (private vs. public), without applying. *)

val checkin : manager -> t -> (change list, Errors.t) result
(** Apply the diff to the public objects and close the workspace.  The
    private copy is deleted.  Fails (leaving the workspace open and the
    public side untouched) if the workspace grew or lost structure, or if
    a changed object was only read-locked (protected part). *)

val discard : manager -> t -> (unit, Errors.t) result
(** Delete the private copy and release the locks without writing back. *)
